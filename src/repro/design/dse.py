"""Distributed, adaptive design-space exploration — Sec. 7 at scale.

The paper's Sec. 7 sweep walks a few dozen ``AxBxC_MxN`` points on one
workload and picks the lowest-power design inside an area budget. This
module grows that tabulated sweep into a real DSE engine in the style
of Timeloop/Accelergy-class infrastructure:

- **Keyspace**: the cross product of array geometry (M, N), TPE dims
  (A, C), datapath style (time-unrolled DP1Mx vs dot-product DPxM8),
  the DBB weight bound B, the per-layer activation DBB bound, SRAM
  size, DRAM bandwidth and technology node — thousands of points,
  enumerated in one deterministic order (:class:`DSESpace`).
- **Evaluation** fans out through the parallel runner
  (:func:`repro.eval.runner.simulate_layer_tasks`) as analytic (or,
  optionally, functional) layer tasks, memoized in the content-addressed
  result cache (:mod:`repro.eval.resultcache`): a DSE point's layer
  payloads are reused across re-sweeps, shards and overlapping spaces.
- **Pareto extraction** is three-dimensional — (energy, cycles, area) —
  rather than the Sec. 7 power-area plane, so latency-optimal designs
  survive alongside the paper's power pick.
- **Adaptive refinement**: the space is sampled coarsely (every
  ``coarse_stride``-th point), then re-enumerated densely around the
  frontier — each round evaluates the unevaluated neighborhood of every
  frontier point, widening the ring each time the frontier survives a
  round unchanged, until it has been stable for ``stable_rounds``
  consecutive rounds (or the neighborhood is exhausted, which proves
  stability outright).
- **Sharding**: ``shard=(i, n)`` deterministically partitions the
  coarse sample across hosts; each shard freezes its evaluations into
  a JSON artifact and :func:`merge_artifacts` unions them and runs the
  (cheap, cache-backed) refinement — producing an artifact identical to
  an unsharded run by construction (asserted in
  ``tests/design/test_dse.py``).
- **Checkpoint/resume**: ``checkpoint=PATH`` atomically snapshots the
  evaluated set plus refinement state every ``checkpoint_every`` coarse
  points and at every refine-round boundary; ``resume=PATH`` picks the
  sweep back up after a crash (or a SIGKILL) and, because evaluation is
  per-point pure and the frontier is a pure function of the evaluation
  set, produces an artifact identical to an uninterrupted run.

``repro dse`` is the CLI front-end; ``benchmarks/bench_dse_throughput``
freezes configs-evaluated-per-second into ``BENCH_*.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.design.space import DesignPoint, enumerate_design_space
from repro.eval.tables import ExperimentResult
from repro.models.specs import BLOCK_SIZE, LayerSpec
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import traced
from repro.workloads.typical import typical_conv_layer

__all__ = [
    "DSEAxes",
    "DSEPoint",
    "DSEEvaluation",
    "DSESpace",
    "DSE_CHECKPOINT_VERSION",
    "evaluate_points",
    "load_checkpoint",
    "pareto_frontier_3d",
    "run_dse",
    "merge_artifacts",
    "parse_shard",
    "render_artifact",
]

#: Bumped whenever the checkpoint payload shape changes; resume refuses
#: checkpoints from another version outright.
DSE_CHECKPOINT_VERSION = 1

#: Fields of :class:`DesignPoint` that span the design axis; two designs
#: of the same datapath style are neighbors when at most two of these
#: differ (under the exact MAC budget a single field can never change
#: alone, so distance two is the tightest real adjacency).
_DESIGN_FIELDS = ("tpe_a", "tpe_c", "rows", "cols", "weight_nnz")


@dataclass(frozen=True)
class DSEAxes:
    """The swept axes. Every tuple is one ordered axis; neighbors step
    one index along exactly one axis."""

    styles: Tuple[bool, ...] = (True, False)  # time-unrolled, dot-product
    weight_nnz: Tuple[int, ...] = (2, 4, 8)   # DBB weight bound B
    a_nnz: Tuple[int, ...] = (2, 3, 4, 8)     # per-layer A-DBB bound
    sram_mb: Tuple[float, ...] = (1.25, 2.5, 5.0)
    dram_gbps: Tuple[Optional[float], ...] = (None,)  # None = default channel
    techs: Tuple[str, ...] = ("16nm",)

    def __post_init__(self):
        for name in ("styles", "weight_nnz", "a_nnz", "sram_mb",
                     "dram_gbps", "techs"):
            values = getattr(self, name)
            if not values:
                raise ValueError(f"axis {name} must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(f"axis {name} has duplicate values")
        for nnz in self.weight_nnz + self.a_nnz:
            if not 1 <= nnz <= BLOCK_SIZE:
                raise ValueError(
                    f"DBB bounds must be in [1, {BLOCK_SIZE}], got {nnz}")
        if any(s <= 0 for s in self.sram_mb):
            raise ValueError("sram_mb values must be positive")
        if any(bw is not None and bw <= 0 for bw in self.dram_gbps):
            raise ValueError("dram_gbps values must be positive (or None)")

    def as_dict(self) -> dict:
        return {
            "styles": list(self.styles),
            "weight_nnz": list(self.weight_nnz),
            "a_nnz": list(self.a_nnz),
            "sram_mb": list(self.sram_mb),
            "dram_gbps": list(self.dram_gbps),
            "techs": list(self.techs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DSEAxes":
        return cls(
            styles=tuple(bool(s) for s in data["styles"]),
            weight_nnz=tuple(int(b) for b in data["weight_nnz"]),
            a_nnz=tuple(int(a) for a in data["a_nnz"]),
            sram_mb=tuple(float(s) for s in data["sram_mb"]),
            dram_gbps=tuple(None if bw is None else float(bw)
                            for bw in data["dram_gbps"]),
            techs=tuple(str(t) for t in data["techs"]),
        )


@dataclass(frozen=True)
class DSEPoint:
    """One fully-specified configuration in the DSE keyspace."""

    design: DesignPoint
    a_nnz: int = 4
    sram_mb: float = 2.5
    dram_gbps: Optional[float] = None
    tech: str = "16nm"

    @property
    def uid(self) -> str:
        """Stable identity — the shard partition and artifact key."""
        style = "tu" if self.design.time_unrolled else "dp"
        bw = "def" if self.dram_gbps is None else f"{self.dram_gbps:g}"
        return (f"{self.design.notation}.{style}.a{self.a_nnz}"
                f".s{self.sram_mb:g}.bw{bw}.{self.tech}")

    def build(self):
        """Instantiate the accelerator at this point (clock derated for
        the TPE dims, SRAM resized — before the lazy memory system or
        the area model ever observe it)."""
        accel = self.design.build(tech=self.tech,
                                  dram_gbps=self.dram_gbps)
        accel.sram_mb = self.sram_mb
        accel.clock_ghz = accel.clock_ghz * self.design.clock_ghz
        return accel

    def layer(self) -> LayerSpec:
        """The reference workload, pruned to this point's DBB bounds."""
        return typical_conv_layer(
            w_density=self.design.weight_nnz / BLOCK_SIZE,
            a_density=self.a_nnz / BLOCK_SIZE)


@dataclass(frozen=True)
class DSEEvaluation:
    """Flattened PPA of one evaluated point (JSON-artifact row)."""

    uid: str
    notation: str
    time_unrolled: bool
    weight_nnz: int
    a_nnz: int
    sram_mb: float
    dram_gbps: Optional[float]
    tech: str
    power_mw: float
    area_mm2: float
    cycles: int
    energy_uj: float

    @property
    def objectives(self) -> Tuple[float, int, float]:
        """(energy, cycles, area) — all minimized."""
        return (self.energy_uj, self.cycles, self.area_mm2)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DSEEvaluation":
        return cls(**data)


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance on minimized objective tuples: ``a`` is no
    worse everywhere and strictly better somewhere."""
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def pareto_frontier_3d(
    evaluations: Iterable[DSEEvaluation],
) -> List[DSEEvaluation]:
    """Non-dominated points on (energy, cycles, area).

    Exact objective ties all survive, and the result — content and
    order — is a pure function of the evaluation *set*, independent of
    input order (the property test in ``tests/design/test_dse.py``).
    """
    ranked = sorted(evaluations, key=lambda e: (e.objectives, e.uid))
    frontier: List[DSEEvaluation] = []
    for entry in ranked:
        if any(_dominates(kept.objectives, entry.objectives)
               for kept in frontier):
            continue
        frontier = [kept for kept in frontier
                    if not _dominates(entry.objectives, kept.objectives)]
        frontier.append(entry)
    return sorted(frontier, key=lambda e: (e.objectives, e.uid))


class DSESpace:
    """The enumerated keyspace: deterministic order, uid index and the
    neighbor topology the refinement loop walks."""

    def __init__(self, axes: Optional[DSEAxes] = None):
        self.axes = axes or DSEAxes()
        self.designs: List[DesignPoint] = []
        for style in self.axes.styles:
            for nnz in self.axes.weight_nnz:
                self.designs.extend(enumerate_design_space(
                    time_unrolled=style, weight_nnz=nnz))
        self.points: List[DSEPoint] = [
            DSEPoint(design=design, a_nnz=a, sram_mb=sram,
                     dram_gbps=bw, tech=tech)
            for design in self.designs
            for a in self.axes.a_nnz
            for sram in self.axes.sram_mb
            for bw in self.axes.dram_gbps
            for tech in self.axes.techs
        ]
        self._by_uid: Dict[str, DSEPoint] = {p.uid: p for p in self.points}
        if len(self._by_uid) != len(self.points):
            raise ValueError("DSE point uids collide — axes misconfigured")
        self._design_neighbors: Optional[
            Dict[DesignPoint, List[DesignPoint]]] = None

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, uid: str) -> DSEPoint:
        return self._by_uid[uid]

    def __contains__(self, uid: str) -> bool:
        return uid in self._by_uid

    # ------------------------------------------------------------- #
    # topology
    # ------------------------------------------------------------- #

    def _design_adjacency(self) -> Dict[DesignPoint, List[DesignPoint]]:
        if self._design_neighbors is None:
            adjacency: Dict[DesignPoint, List[DesignPoint]] = {
                d: [] for d in self.designs}
            for i, a in enumerate(self.designs):
                for b in self.designs[i + 1:]:
                    if a.time_unrolled != b.time_unrolled:
                        continue
                    distance = sum(
                        getattr(a, f) != getattr(b, f)
                        for f in _DESIGN_FIELDS)
                    if 1 <= distance <= 2:
                        adjacency[a].append(b)
                        adjacency[b].append(a)
            self._design_neighbors = adjacency
        return self._design_neighbors

    def neighbors(self, uid: str) -> List[DSEPoint]:
        """Points one step away: the same design with one scalar axis
        (A-DBB, SRAM, DRAM bandwidth, tech) stepped by one, plus the
        adjacent designs (axis distance <= 2 under the MAC budget) with
        every scalar axis held."""
        point = self._by_uid[uid]
        out: List[DSEPoint] = []
        scalar_axes = (
            ("a_nnz", self.axes.a_nnz),
            ("sram_mb", self.axes.sram_mb),
            ("dram_gbps", self.axes.dram_gbps),
            ("tech", self.axes.techs),
        )
        for attr, values in scalar_axes:
            idx = values.index(getattr(point, attr))
            for j in (idx - 1, idx + 1):
                if 0 <= j < len(values):
                    out.append(dataclasses.replace(point,
                                                   **{attr: values[j]}))
        for design in self._design_adjacency()[point.design]:
            out.append(dataclasses.replace(point, design=design))
        return out

    def neighborhood(self, uids: Iterable[str],
                     radius: int = 1) -> List[DSEPoint]:
        """The union of <= ``radius``-hop neighbors of ``uids``
        (excluding the seeds), in deterministic uid order."""
        seeds = set(uids)
        seen = set(seeds)
        ring = list(seeds)
        collected: Dict[str, DSEPoint] = {}
        for _ in range(max(1, radius)):
            nxt: List[str] = []
            for uid in ring:
                for q in self.neighbors(uid):
                    if q.uid not in seen:
                        seen.add(q.uid)
                        collected[q.uid] = q
                        nxt.append(q.uid)
            ring = nxt
            if not ring:
                break
        return [collected[uid] for uid in sorted(collected)]


# ----------------------------------------------------------------- #
# evaluation
# ----------------------------------------------------------------- #

def evaluate_points(
    points: Sequence[DSEPoint],
    fidelity: str = "analytic",
    seed: int = 0,
    max_m: Optional[int] = None,
    jobs: Optional[int] = None,
    result_cache=None,
) -> Dict[str, DSEEvaluation]:
    """Evaluate each point's reference workload through the parallel,
    memoized runner; returns ``{uid: evaluation}``.

    ``fidelity="analytic"`` (default) prices the closed-form layer
    events — sub-millisecond per point, which is what makes a
    thousands-of-points sweep interactive. ``"functional"`` simulates
    synthesized INT8 operands on the cycle simulator (``seed`` /
    ``max_m`` as in the full-model experiments). Either way the
    payloads memoize under tier-separated cache keys.
    """
    from repro.eval.runner import LayerSimTask, simulate_layer_tasks

    if fidelity not in ("analytic", "functional"):
        raise ValueError(f"unknown fidelity {fidelity!r}")
    analytic = fidelity == "analytic"
    staged = []
    tasks = []
    for point in points:
        accel = point.build()
        layer = point.layer()
        staged.append((point, accel, layer))
        tasks.append(LayerSimTask(accel, layer, seed=seed, max_m=max_m,
                                  analytic=analytic))
    payloads = simulate_layer_tasks(tasks, jobs=jobs,
                                    result_cache=result_cache)
    out: Dict[str, DSEEvaluation] = {}
    for (point, accel, layer), (compute_cycles, events) in zip(staged,
                                                               payloads):
        result = accel._finalize_layer(layer, compute_cycles, events)
        runtime_s = result.cycles / (accel.clock_ghz * 1e9)
        power_mw = (result.energy_pj * 1e-12 / runtime_s * 1e3
                    if runtime_s else 0.0)
        out[point.uid] = DSEEvaluation(
            uid=point.uid,
            notation=point.design.notation,
            time_unrolled=point.design.time_unrolled,
            weight_nnz=point.design.weight_nnz,
            a_nnz=point.a_nnz,
            sram_mb=point.sram_mb,
            dram_gbps=point.dram_gbps,
            tech=point.tech,
            power_mw=power_mw,
            area_mm2=accel.area_mm2(),
            cycles=result.cycles,
            energy_uj=result.energy_uj,
        )
    return out


# ----------------------------------------------------------------- #
# the engine
# ----------------------------------------------------------------- #

def parse_shard(text: str) -> Tuple[int, int]:
    """``"i/n"`` -> ``(i, n)`` with 0 <= i < n."""
    try:
        index_text, count_text = text.split("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like I/N (e.g. 0/4), got {text!r}") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must satisfy 0 <= I < N, got {text!r}")
    return index, count


def _space_config(axes: DSEAxes, coarse_stride: int, stable_rounds: int,
                  fidelity: str, seed: int, max_m: Optional[int]) -> dict:
    return {
        "axes": axes.as_dict(),
        "coarse_stride": coarse_stride,
        "stable_rounds": stable_rounds,
        "fidelity": fidelity,
        "seed": seed,
        "max_m": max_m,
    }


def _signature(config: dict) -> str:
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _cache_meta(result_cache) -> dict:
    if result_cache is None:
        return {"enabled": False}
    lookups = result_cache.hits + result_cache.misses
    return {
        "enabled": True,
        "hits": result_cache.hits,
        "misses": result_cache.misses,
        "hit_rate": (result_cache.hits / lookups) if lookups else 0.0,
    }


def _artifact(config: dict, total_points: int, phase: str,
              shard: Optional[Tuple[int, int]],
              evaluations: Dict[str, DSEEvaluation],
              frontier: List[DSEEvaluation], rounds: List[dict],
              result_cache) -> dict:
    space = dict(config)
    space["signature"] = _signature(config)
    space["points"] = total_points
    return {
        "artifact": "dse",
        "space": space,
        "phase": phase,
        "shard": (None if shard is None
                  else {"index": shard[0], "count": shard[1]}),
        "evaluations": [evaluations[uid].as_dict()
                        for uid in sorted(evaluations)],
        "frontier": [e.uid for e in frontier],
        "rounds": rounds,
        "meta": {"cache": _cache_meta(result_cache)},
    }


def _write_json_atomic(path: Path, data: dict) -> None:
    """Write-to-temp + ``os.replace`` so a crash mid-write can never
    leave a torn checkpoint — the previous one survives intact."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(data, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _checkpoint_payload(config: dict, total_points: int,
                        shard: Optional[Tuple[int, int]],
                        evaluations: Dict[str, DSEEvaluation],
                        coarse_done: int,
                        refine: Optional[dict]) -> dict:
    space = dict(config)
    space["signature"] = _signature(config)
    space["points"] = total_points
    return {
        "artifact": "dse-checkpoint",
        "version": DSE_CHECKPOINT_VERSION,
        "space": space,
        "shard": (None if shard is None
                  else {"index": shard[0], "count": shard[1]}),
        "coarse_done": coarse_done,
        "evaluations": [evaluations[uid].as_dict()
                        for uid in sorted(evaluations)],
        "refine": refine,
    }


def load_checkpoint(path) -> dict:
    """Read and validate a DSE checkpoint written by ``run_dse``.

    Raises ``ValueError`` on anything that is not a compatible
    checkpoint: wrong artifact kind, wrong version, or a space
    signature that no longer matches its own stored configuration
    (corruption, or a hand-edited file)."""
    data = json.loads(Path(path).read_text())
    if data.get("artifact") != "dse-checkpoint":
        raise ValueError(f"{path}: not a DSE checkpoint")
    if data.get("version") != DSE_CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: checkpoint version {data.get('version')!r} != "
            f"{DSE_CHECKPOINT_VERSION}")
    space = data["space"]
    config = _space_config(
        DSEAxes.from_dict(space["axes"]), space["coarse_stride"],
        space["stable_rounds"], space["fidelity"], space["seed"],
        space["max_m"])
    if _signature(config) != space.get("signature"):
        raise ValueError(
            f"{path}: space signature mismatch — checkpoint is corrupt "
            f"or was written against a different space definition")
    if not 0 <= int(data.get("coarse_done", -1)):
        raise ValueError(f"{path}: bad coarse_done")
    return data


def _refine(space: DSESpace, evaluations: Dict[str, DSEEvaluation],
            config: dict, jobs: Optional[int], result_cache,
            max_rounds: int = 64,
            rounds: Optional[List[dict]] = None, stable: int = 0,
            save=None) -> Tuple[List[DSEEvaluation], List[dict]]:
    """The adaptive loop: evaluate the frontier's neighborhood each
    round, widening the ring while the frontier holds, until it has
    been stable for ``stable_rounds`` rounds or the whole reachable
    neighborhood is evaluated (which proves stability).

    ``rounds``/``stable`` seed the loop from a checkpoint; the frontier
    itself is recomputed from the evaluation set (of which it is a pure
    function), so they are the *only* path-dependent state. ``save``,
    when given, is called after every completed round with
    ``(evaluations, {"rounds": ..., "stable": ...})``.
    """
    stable_rounds = config["stable_rounds"]
    frontier = pareto_frontier_3d(evaluations.values())
    if rounds is None:
        rounds = [{"round": 0, "new_points": len(evaluations),
                   "evaluated": len(evaluations),
                   "frontier_size": len(frontier)}]
    else:
        rounds = [dict(r) for r in rounds]
    while stable < stable_rounds and len(rounds) <= max_rounds:
        frontier_uids = [e.uid for e in frontier]
        candidates = [p for p in space.neighborhood(frontier_uids,
                                                    radius=stable + 1)
                      if p.uid not in evaluations]
        if not candidates:
            # Every point reachable from the frontier is evaluated and
            # none displaced it: stable by exhaustion.
            break
        with obs_trace.span(f"refine-round-{len(rounds)}", "dse",
                            candidates=len(candidates)):
            evaluations.update(evaluate_points(
                candidates, fidelity=config["fidelity"],
                seed=config["seed"], max_m=config["max_m"], jobs=jobs,
                result_cache=result_cache))
        new_frontier = pareto_frontier_3d(evaluations.values())
        stable = (stable + 1
                  if [e.uid for e in new_frontier] == frontier_uids
                  else 0)
        frontier = new_frontier
        rounds.append({"round": len(rounds), "new_points": len(candidates),
                       "evaluated": len(evaluations),
                       "frontier_size": len(frontier)})
        if save is not None:
            save(evaluations, {"rounds": rounds, "stable": stable})
    return frontier, rounds


@traced("dse", "experiment")
def run_dse(
    axes: Optional[DSEAxes] = None,
    coarse_stride: int = 4,
    stable_rounds: int = 2,
    fidelity: str = "analytic",
    seed: int = 0,
    max_m: Optional[int] = None,
    jobs: Optional[int] = None,
    result_cache=None,
    shard: Optional[Tuple[int, int]] = None,
    checkpoint=None,
    checkpoint_every: int = 256,
    resume=None,
) -> dict:
    """Run the sweep and return the JSON-ready artifact.

    Unsharded: coarse sample -> adaptive refinement -> final artifact.
    With ``shard=(i, n)``: evaluate slice ``i`` of the coarse sample
    only and return a ``phase="coarse"`` partial artifact;
    :func:`merge_artifacts` over all ``n`` shards completes the
    refinement and yields an artifact identical to the unsharded run.

    ``checkpoint=PATH`` atomically snapshots progress every
    ``checkpoint_every`` coarse points and after every refinement
    round. ``resume=PATH`` restores a snapshot and continues; the run
    configuration (axes, stride, fidelity, seed, ...) is taken from
    the checkpoint — the corresponding arguments are ignored — so a
    resumed run is the *same* run and its final artifact equals the
    uninterrupted one. When resuming without an explicit
    ``checkpoint``, new snapshots keep going to the resume path, so a
    crash-restart loop needs only ``resume=PATH``.
    """
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}")
    evaluations: Dict[str, DSEEvaluation] = {}
    coarse_done = 0
    refine_state: Optional[dict] = None
    if resume is not None:
        state = load_checkpoint(resume)
        stored = state["space"]
        axes = DSEAxes.from_dict(stored["axes"])
        coarse_stride = stored["coarse_stride"]
        stable_rounds = stored["stable_rounds"]
        fidelity = stored["fidelity"]
        seed = stored["seed"]
        max_m = stored["max_m"]
        shard = (None if state["shard"] is None
                 else (state["shard"]["index"], state["shard"]["count"]))
        evaluations = {row["uid"]: DSEEvaluation.from_dict(row)
                       for row in state["evaluations"]}
        coarse_done = int(state["coarse_done"])
        refine_state = state["refine"]
        if checkpoint is None:
            checkpoint = resume
    if coarse_stride < 1:
        raise ValueError(f"coarse_stride must be >= 1, got {coarse_stride}")
    if stable_rounds < 1:
        raise ValueError(f"stable_rounds must be >= 1, got {stable_rounds}")
    space = DSESpace(axes)
    config = _space_config(space.axes, coarse_stride, stable_rounds,
                           fidelity, seed, max_m)
    coarse = space.points[::coarse_stride]
    owned = coarse if shard is None else coarse[shard[0]::shard[1]]
    if coarse_done > len(owned):
        raise ValueError(
            f"checkpoint has {coarse_done} coarse points but the space "
            f"only owns {len(owned)} — wrong checkpoint for this space")
    checkpoint_path = None if checkpoint is None else Path(checkpoint)

    def save(refine: Optional[dict]) -> None:
        if checkpoint_path is None:
            return
        _write_json_atomic(checkpoint_path, _checkpoint_payload(
            config, len(space), shard, evaluations, coarse_done, refine))
        obs_metrics.default_registry().counter("dse.checkpoints").inc()

    pending = owned[coarse_done:]
    with obs_trace.span("coarse" if shard is None else "coarse-shard",
                        "dse", points=len(owned), pending=len(pending)):
        if checkpoint_path is None:
            evaluations.update(evaluate_points(
                pending, fidelity=fidelity, seed=seed, max_m=max_m,
                jobs=jobs, result_cache=result_cache))
            coarse_done = len(owned)
        else:
            for start in range(0, len(pending), checkpoint_every):
                chunk = pending[start:start + checkpoint_every]
                evaluations.update(evaluate_points(
                    chunk, fidelity=fidelity, seed=seed, max_m=max_m,
                    jobs=jobs, result_cache=result_cache))
                coarse_done += len(chunk)
                save(refine_state)
    if shard is not None:
        return _artifact(config, len(space), "coarse", shard,
                         evaluations, [], [], result_cache)
    frontier, rounds = _refine(
        space, evaluations, config, jobs, result_cache,
        rounds=None if refine_state is None else refine_state["rounds"],
        stable=0 if refine_state is None else int(refine_state["stable"]),
        save=None if checkpoint_path is None else
        (lambda _evals, refine: save(refine)))
    return _artifact(config, len(space), "final", None, evaluations,
                     frontier, rounds, result_cache)


def merge_artifacts(artifacts: Sequence[dict],
                    jobs: Optional[int] = None,
                    result_cache=None) -> dict:
    """Union per-shard coarse artifacts and complete the refinement.

    Every shard must come from the same space (signature match) and the
    shard set must be exactly ``0..n-1``. The refinement evaluates its
    candidates here (through the result cache, so a warm merge host
    reuses the shards' payloads when they share a cache) — the merged
    artifact equals the unsharded run's by construction.
    """
    if not artifacts:
        raise ValueError("nothing to merge")
    signatures = {a["space"]["signature"] for a in artifacts}
    if len(signatures) != 1:
        raise ValueError(
            f"shards come from different spaces: {sorted(signatures)}")
    for art in artifacts:
        if art.get("phase") != "coarse" or not art.get("shard"):
            raise ValueError(
                "merge takes per-shard coarse artifacts "
                "(produced by --shard I/N)")
    counts = {a["shard"]["count"] for a in artifacts}
    if len(counts) != 1:
        raise ValueError(f"inconsistent shard counts: {sorted(counts)}")
    count = counts.pop()
    indices = sorted(a["shard"]["index"] for a in artifacts)
    if indices != list(range(count)):
        raise ValueError(
            f"need shards 0..{count - 1} exactly once, got {indices}")
    reference = artifacts[0]["space"]
    axes = DSEAxes.from_dict(reference["axes"])
    space = DSESpace(axes)
    config = _space_config(axes, reference["coarse_stride"],
                           reference["stable_rounds"],
                           reference["fidelity"], reference["seed"],
                           reference["max_m"])
    evaluations: Dict[str, DSEEvaluation] = {}
    for art in artifacts:
        for row in art["evaluations"]:
            entry = DSEEvaluation.from_dict(row)
            evaluations[entry.uid] = entry
    frontier, rounds = _refine(space, evaluations, config, jobs,
                               result_cache)
    return _artifact(config, len(space), "final", None, evaluations,
                     frontier, rounds, result_cache)


# ----------------------------------------------------------------- #
# rendering
# ----------------------------------------------------------------- #

def render_artifact(artifact: dict, top: int = 12) -> ExperimentResult:
    """Human-readable summary table of a DSE artifact."""
    evaluations = [DSEEvaluation.from_dict(row)
                   for row in artifact["evaluations"]]
    frontier_uids = set(artifact["frontier"])
    ranked = sorted(evaluations, key=lambda e: (e.objectives, e.uid))
    rows = [
        [e.notation,
         "time-unrolled" if e.time_unrolled else "dot-product",
         e.a_nnz,
         e.sram_mb,
         "default" if e.dram_gbps is None else f"{e.dram_gbps:g} GB/s",
         e.tech,
         round(e.energy_uj, 1),
         e.cycles,
         round(e.area_mm2, 2),
         round(e.power_mw, 1),
         "yes" if e.uid in frontier_uids else "no"]
        for e in ranked[:top]
    ]
    space = artifact["space"]
    notes = [
        f"{space['points']} points in the space; "
        f"{len(evaluations)} evaluated "
        f"(coarse stride {space['coarse_stride']}, "
        f"{space['fidelity']} fidelity)",
    ]
    if artifact["phase"] == "coarse":
        shard = artifact["shard"]
        notes.append(
            f"partial shard {shard['index']}/{shard['count']} — merge "
            f"all shards with `repro dse --merge` for the frontier")
    else:
        notes.append(
            f"(energy x cycles x area) Pareto frontier: "
            f"{len(frontier_uids)} points, stable after "
            f"{len(artifact['rounds'])} refinement round(s)")
    cache = artifact["meta"]["cache"]
    if cache.get("enabled"):
        notes.append(
            f"result cache: {cache['hits']} hits / {cache['misses']} "
            f"misses ({cache['hit_rate']:.1%} hit rate)")
    return ExperimentResult(
        artifact="DSE",
        title="adaptive AxBxC_MxN design-space exploration "
              "(typical conv, per-point DBB bounds)",
        headers=["design", "style", "A-DBB", "SRAM MB", "DRAM", "tech",
                 "energy uJ", "cycles", "area mm2", "power mW",
                 "frontier"],
        rows=rows,
        notes=notes,
    )
