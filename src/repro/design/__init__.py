"""Design-space exploration — the paper's RTL-generator methodology.

Sec. 7: "we implement a parameterized Python RTL generator to explore
the full design space, defined by five main parameters: the three TPE
dimensions (A, B, C) and the dimension of the entire SA (M, N)". This
package reproduces that flow in model form:

- :mod:`repro.design.space`: enumerate ``AxBxC_MxN`` design points under
  the 4 TOPS peak-throughput constraint, evaluate PPA for each, extract
  the area-vs-power Pareto frontier, and select the lowest-power point —
  which the paper (and this model) finds to be the time-unrolled
  8x4x4_8x8 outer-product TPE.
- :mod:`repro.design.rtlgen`: emit the structural netlist summary
  (module hierarchy with port widths) a given design point would
  generate — the artifact the paper's generator hands to the EDA flow.
- :mod:`repro.design.dse`: scale the Sec. 7 sweep into a distributed,
  adaptive design-space exploration — the full ``AxBxC_MxN`` x
  (A-DBB bound, SRAM size, DRAM bandwidth, tech) keyspace, evaluated
  through the parallel memoized runner, coarse-sampled and then
  adaptively refined around the (energy x cycles x area) Pareto
  frontier; deterministic ``--shard I/N`` partitioning with
  merge-equals-unsharded artifacts (the ``repro dse`` CLI).
"""

from repro.design.dse import (
    DSEAxes,
    DSEEvaluation,
    DSEPoint,
    DSESpace,
    merge_artifacts,
    pareto_frontier_3d,
    run_dse,
)
from repro.design.rtlgen import generate_structure
from repro.design.space import (
    DesignPoint,
    enumerate_design_space,
    evaluate_point,
    pareto_frontier,
    select_lowest_power,
)

__all__ = [
    "DesignPoint",
    "enumerate_design_space",
    "evaluate_point",
    "pareto_frontier",
    "select_lowest_power",
    "generate_structure",
    "DSEAxes",
    "DSEPoint",
    "DSEEvaluation",
    "DSESpace",
    "pareto_frontier_3d",
    "run_dse",
    "merge_artifacts",
]
