"""Deterministic, seeded fault injection for chaos testing.

Off by default and *free* when off: every injection point guards on a
single module-global ``None`` check (benchmarked in
``benchmarks/bench_fault_overhead.py``, regression-gated like the
tracer's disabled path). Enable with::

    REPRO_FAULTS="worker_crash:p=0.05,cache_corrupt:p=0.02,task_hang:p=0.01"

or programmatically via :func:`configure`. Each element is
``name[:k=v]*``; a bare ``seed=N`` element seeds the whole registry
(default 0). Per-fault keys:

- ``p``    — firing probability per eligible occurrence (default 1.0).
- ``n``    — maximum fires per distinct key (default 1), so retries of
             the same work eventually succeed *within one process*. A
             re-spawned process starts fresh counters, which is exactly
             the crash-loop a poison job produces — the queue's
             quarantine path, not a harness artifact.
- ``s``    — hang duration in seconds (``task_hang`` only, default 3600).

Decisions are deterministic: whether occurrence ``n`` of fault ``name``
on ``key`` fires is a pure function of ``(seed, name, key, n)`` (SHA-256
mapped to [0, 1) and compared against ``p``), so a chaos run replays
bit-identically under the same seed and call sequence.

Faults and their injection sites:

=================== ============== =====================================
fault               site           effect when it fires
=================== ============== =====================================
``worker_crash``    task_execute   ``os._exit(23)`` — *pool workers
                                   only* (see :func:`mark_worker`), so
                                   the parent's serial fallback and
                                   lease-based re-queue stay clean.
``task_hang``       task_execute   ``time.sleep(s)`` — pool workers
                                   only; exercises per-task timeouts
                                   and lease expiry.
``cache_corrupt``   cache_write    entry bytes garbled before the
                                   atomic write — a persistent bad
                                   entry for the read-side quarantine.
``cache_read_flip`` cache_read     entry bytes garbled after the read —
                                   transient corruption; the on-disk
                                   file is actually fine.
``claim_fail``      queue_claim    raises :class:`InjectedFault` from
                                   the scheduler's claim step.
``http_error``      http_handler   raises :class:`InjectedFault` from
                                   the request handler (mapped to 500).
=================== ============== =====================================

Call sites pass a *stable* key (result-cache payload key, job
fingerprint, request path) so decisions survive re-ordering of
unrelated work.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "ENV_VAR", "FAULTS", "SITES", "InjectedFault", "FaultSpec",
    "FaultRegistry", "parse_faults", "configure", "configure_from_env",
    "reset", "active", "inject", "mangle", "mark_worker", "in_worker",
    "EXIT_CODE",
]

ENV_VAR = "REPRO_FAULTS"

# Exit status used by worker_crash; distinctive enough to tell an
# injected crash from a real one in test output.
EXIT_CODE = 23

# name -> (site, kind, worker_only). Kinds: "exit" / "hang" / "raise"
# fire through inject(); "corrupt" fires through mangle().
FAULTS: Mapping[str, Tuple[str, str, bool]] = {
    "worker_crash": ("task_execute", "exit", True),
    "task_hang": ("task_execute", "hang", True),
    "cache_corrupt": ("cache_write", "corrupt", False),
    "cache_read_flip": ("cache_read", "corrupt", False),
    "claim_fail": ("queue_claim", "raise", False),
    "http_error": ("http_handler", "raise", False),
}

SITES = tuple(sorted({site for site, _, _ in FAULTS.values()}))

_DEFAULT_HANG_S = 3600.0


class InjectedFault(RuntimeError):
    """A fault fired at an injection point (kind="raise")."""

    def __init__(self, name: str, site: str, key: str) -> None:
        super().__init__(f"injected fault {name} at {site} (key={key})")
        self.fault = name
        self.site = site
        self.key = key


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: probability + per-key fire budget."""

    name: str
    p: float = 1.0
    max_fires: int = 1
    hang_s: float = _DEFAULT_HANG_S

    def __post_init__(self) -> None:
        if self.name not in FAULTS:
            known = ", ".join(sorted(FAULTS))
            raise ValueError(f"unknown fault {self.name!r} (known: {known})")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault {self.name}: p must be in [0, 1], "
                             f"got {self.p}")
        if self.max_fires < 1:
            raise ValueError(f"fault {self.name}: n must be >= 1, "
                             f"got {self.max_fires}")
        if self.hang_s <= 0:
            raise ValueError(f"fault {self.name}: s must be > 0, "
                             f"got {self.hang_s}")

    @property
    def site(self) -> str:
        return FAULTS[self.name][0]

    @property
    def kind(self) -> str:
        return FAULTS[self.name][1]

    @property
    def worker_only(self) -> bool:
        return FAULTS[self.name][2]


def parse_faults(text: str) -> Tuple[int, Tuple[FaultSpec, ...]]:
    """``(seed, specs)`` from the ``REPRO_FAULTS`` syntax.

    Strict like ``serve.jobs.parse_request``: unknown fault names and
    unknown per-fault keys raise ``ValueError`` so a typo cannot
    silently disable the chaos run it was meant to configure.
    """
    seed = 0
    specs = []
    seen = set()
    for raw in text.split(","):
        item = raw.strip()
        if not item:
            continue
        if item.startswith("seed="):
            seed = int(item[len("seed="):], 10)
            continue
        parts = item.split(":")
        name = parts[0].strip()
        kwargs: Dict[str, float] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ValueError(
                    f"fault option {part!r} in {item!r} is not k=v")
            k, v = part.split("=", 1)
            k = k.strip()
            if k not in ("p", "n", "s"):
                raise ValueError(
                    f"unknown fault option {k!r} in {item!r} "
                    "(known: p, n, s)")
            kwargs[k] = float(v)
        spec = FaultSpec(
            name=name,
            p=kwargs.get("p", 1.0),
            max_fires=int(kwargs.get("n", 1)),
            hang_s=kwargs.get("s", _DEFAULT_HANG_S),
        )
        if name in seen:
            raise ValueError(f"fault {name!r} configured twice")
        seen.add(name)
        specs.append(spec)
    return seed, tuple(specs)


@dataclass
class FaultRegistry:
    """Holds the configured faults plus per-(fault, key) fire counters.

    Thread-safe: the scheduler thread, HTTP handler threads and the
    in-process test harness all consult one registry.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()
    _by_site: Dict[str, Tuple[FaultSpec, ...]] = field(init=False)
    _occurrences: Dict[Tuple[str, str], int] = field(init=False)
    _fired: Dict[str, int] = field(init=False)
    _lock: threading.Lock = field(init=False)

    def __post_init__(self) -> None:
        by_site: Dict[str, list] = {}
        for spec in self.specs:
            by_site.setdefault(spec.site, []).append(spec)
        self._by_site = {s: tuple(v) for s, v in by_site.items()}
        self._occurrences = {}
        self._fired = {}
        self._lock = threading.Lock()

    # -- decision machinery ------------------------------------------

    @staticmethod
    def _uniform(seed: int, name: str, key: str, occurrence: int) -> float:
        digest = hashlib.sha256(
            f"{seed}|{name}|{key}|{occurrence}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _fires(self, spec: FaultSpec, key: str) -> bool:
        with self._lock:
            ident = (spec.name, key)
            n = self._occurrences.get(ident, 0)
            self._occurrences[ident] = n + 1
            if n >= spec.max_fires and spec.p >= 1.0:
                return False
            # Budget counts *fires*, not occurrences: with p < 1 an
            # occurrence that rolls a miss does not consume budget.
            fired_so_far = sum(
                1 for i in range(n)
                if self._uniform(self.seed, spec.name, key, i) < spec.p)
            if fired_so_far >= spec.max_fires:
                return False
            if self._uniform(self.seed, spec.name, key, n) < spec.p:
                self._fired[spec.name] = self._fired.get(spec.name, 0) + 1
                return True
            return False

    # -- injection points --------------------------------------------

    def inject(self, site: str, key: str, *, worker: bool) -> None:
        for spec in self._by_site.get(site, ()):
            if spec.kind == "corrupt":
                continue
            if spec.worker_only and not worker:
                continue
            if not self._fires(spec, key):
                continue
            if spec.kind == "exit":
                os._exit(EXIT_CODE)
            if spec.kind == "hang":
                time.sleep(spec.hang_s)
                continue
            raise InjectedFault(spec.name, site, key)

    def mangle(self, site: str, key: str, data: bytes,
               *, worker: bool) -> bytes:
        for spec in self._by_site.get(site, ()):
            if spec.kind != "corrupt":
                continue
            if spec.worker_only and not worker:
                continue
            if self._fires(spec, key):
                # Keep the length, garble the content: json parsing
                # fails loudly, size accounting stays plausible.
                data = b"\x00CORRUPT\x00" + data[9:] if len(data) > 9 \
                    else b"\x00CORRUPT\x00"
        return data

    def counts(self) -> Dict[str, int]:
        """Fires so far, by fault name (chaos-suite assertions)."""
        with self._lock:
            return dict(self._fired)


# -- module-level fast path ------------------------------------------

_REGISTRY: Optional[FaultRegistry] = None
_IN_WORKER = False


def configure(text: Optional[str]) -> Optional[FaultRegistry]:
    """Install a registry from a ``REPRO_FAULTS``-syntax string.

    ``None`` or an empty string uninstalls (the free path). Returns the
    installed registry so tests can assert on ``counts()``.
    """
    global _REGISTRY
    if not text:
        _REGISTRY = None
        return None
    seed, specs = parse_faults(text)
    _REGISTRY = FaultRegistry(seed=seed, specs=specs)
    return _REGISTRY


def configure_from_env() -> Optional[FaultRegistry]:
    return configure(os.environ.get(ENV_VAR))


def reset() -> None:
    global _REGISTRY, _IN_WORKER
    _REGISTRY = None
    _IN_WORKER = False


def active() -> Optional[FaultRegistry]:
    return _REGISTRY


def mark_worker() -> None:
    """Arm worker-only faults; called from the pool initializer so
    ``worker_crash``/``task_hang`` never fire in the parent (whose
    serial fallback must stay clean)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


def inject(site: str, key: str) -> None:
    """Injection point for exit/hang/raise faults. Near-free when no
    registry is installed (one global load + None check)."""
    if _REGISTRY is None:
        return
    _REGISTRY.inject(site, key, worker=_IN_WORKER)


def mangle(site: str, key: str, data: bytes) -> bytes:
    """Injection point for corruption faults; returns ``data`` possibly
    garbled. Near-free when no registry is installed."""
    if _REGISTRY is None:
        return data
    return _REGISTRY.mangle(site, key, data, worker=_IN_WORKER)


# Inherit REPRO_FAULTS at import so pool workers (fresh interpreters
# with the parent's environment) self-arm without plumbing.
configure_from_env()
