"""ResNet-50V1 (ImageNet) layer specs and DBB density profile.

Bottleneck stages are generated programmatically ([3, 4, 6, 3] blocks).
Table 3's evaluated variant: 3/8 W-DBB (conv1 excluded), per-layer A-DBB
averaging 3.49/8. The paper highlights ResNet50's wide per-layer range —
8/8 (dense) in early layers down to 2/8 towards the end (Sec. 5.2) —
which is encoded here as a stage-wise profile.
"""

from __future__ import annotations

from typing import List

from repro.models.specs import LayerKind, LayerSpec, ModelSpec

__all__ = ["resnet50_spec"]

# (stage, spatial, in_ch, mid_ch, out_ch, blocks, first_stride)
_STAGES = [
    (2, 56, 64, 64, 256, 3, 1),
    (3, 28, 256, 128, 512, 4, 2),
    (4, 14, 512, 256, 1024, 6, 2),
    (5, 7, 1024, 512, 2048, 3, 2),
]

# Per-stage A-DBB profile: (a_nnz by block index, act_density base).
# Stage 2 is nearly dense (6/8), the tail of stage 4 and all of stage 5
# run at the sparse end (2/8); MAC-weighted average ~3.49/8.
_STAGE_A_NNZ = {
    2: lambda block_idx, blocks: 6,
    3: lambda block_idx, blocks: 4 if block_idx < blocks // 2 else 3,
    4: lambda block_idx, blocks: 3 if block_idx < blocks // 2 else 2,
    5: lambda block_idx, blocks: 2,
}


def _bottleneck(
    stage: int,
    block_idx: int,
    spatial: int,
    in_ch: int,
    mid_ch: int,
    out_ch: int,
    a_nnz: int,
) -> List[LayerSpec]:
    """The three convs of one bottleneck block (+ projection on block 0)."""
    conv = LayerKind.CONV
    m = spatial * spatial
    density = a_nnz / 8.0 * 0.9
    prefix = f"res{stage}_{block_idx}"
    layers = [
        LayerSpec(f"{prefix}_1x1a", conv, m=m, k=in_ch, n=mid_ch,
                  w_nnz=3, a_nnz=a_nnz, act_density=density),
        LayerSpec(f"{prefix}_3x3", conv, m=m, k=9 * mid_ch, n=mid_ch,
                  w_nnz=3, a_nnz=a_nnz, act_density=density),
        LayerSpec(f"{prefix}_1x1b", conv, m=m, k=mid_ch, n=out_ch,
                  w_nnz=3, a_nnz=a_nnz, act_density=density),
    ]
    if block_idx == 0:
        layers.append(
            LayerSpec(f"{prefix}_proj", conv, m=m, k=in_ch, n=out_ch,
                      w_nnz=3, a_nnz=a_nnz, act_density=density)
        )
    return layers


def resnet50_spec() -> ModelSpec:
    """ResNet-50V1 with the paper's joint A/W-DBB profile (Table 3 row *)."""
    layers = [
        LayerSpec("conv1", LayerKind.CONV, m=112 * 112, k=147, n=64,
                  w_nnz=8, a_nnz=8, weight_density=0.92, act_density=1.0),
    ]
    for stage, spatial, in_ch, mid_ch, out_ch, blocks, _stride in _STAGES:
        profile = _STAGE_A_NNZ[stage]
        for block_idx in range(blocks):
            block_in = in_ch if block_idx == 0 else out_ch
            layers.extend(
                _bottleneck(
                    stage, block_idx, spatial, block_in, mid_ch, out_ch,
                    a_nnz=profile(block_idx, blocks),
                )
            )
    layers.append(
        LayerSpec("fc", LayerKind.FC, m=1, k=2048, n=1000,
                  w_nnz=3, a_nnz=3, act_density=0.3)
    )
    return ModelSpec(
        name="resnet50",
        dataset="imagenet",
        layers=layers,
        baseline_accuracy=75.0,
        notes="3/8 W-DBB (conv1 excluded), per-layer A-DBB avg ~3.49/8",
    )
