"""LeNet-5 (MNIST) layer specs — Table 3's joint 4/8 A, 2/8 W variant."""

from __future__ import annotations

from repro.models.specs import LayerKind, LayerSpec, ModelSpec

__all__ = ["lenet5_spec"]


def lenet5_spec() -> ModelSpec:
    """Classic LeNet-5 at 28x28 input (valid convs, 2x2 pools)."""
    conv = LayerKind.CONV
    fc = LayerKind.FC
    layers = [
        LayerSpec("conv1", conv, m=24 * 24, k=25, n=6,
                  w_nnz=8, a_nnz=8, weight_density=0.9, act_density=1.0),
        LayerSpec("conv2", conv, m=8 * 8, k=150, n=16,
                  w_nnz=2, a_nnz=4, act_density=0.45),
        LayerSpec("fc3", fc, m=1, k=256, n=120,
                  w_nnz=2, a_nnz=4, act_density=0.42),
        LayerSpec("fc4", fc, m=1, k=120, n=84,
                  w_nnz=2, a_nnz=4, act_density=0.40),
        LayerSpec("fc5", fc, m=1, k=84, n=10,
                  w_nnz=2, a_nnz=4, act_density=0.40),
    ]
    return ModelSpec(
        name="lenet5",
        dataset="mnist",
        layers=layers,
        baseline_accuracy=99.0,
        notes="2/8 W-DBB (conv1 excluded), 4/8 A-DBB",
    )
