"""I-BERT base encoder layer specs (GLUE, Table 3 transformer rows).

The paper prunes only the fully-connected sub-layers (FC1, FC2) of each
encoder (Table 3 note 4); attention projections stay dense. Sequence
length 128, hidden 768, intermediate 3072, 12 encoder layers.
"""

from __future__ import annotations

from repro.models.specs import LayerKind, LayerSpec, ModelSpec

__all__ = ["ibert_spec"]

_SEQ_LEN = 128
_HIDDEN = 768
_INTERMEDIATE = 3072
_ENCODERS = 12


def ibert_spec(a_nnz: int = 4, w_nnz: int = 4, task: str = "qqp") -> ModelSpec:
    """I-BERT base with DBB on FC1/FC2 only.

    ``a_nnz``/``w_nnz`` select the Table 3 variant (4/8 or 3/8); pass 8 to
    disable one form of sparsity. GELU activations are not one-sided like
    ReLU, so the dense-element density stays moderate even under DBB.
    """
    baselines = {"qqp": 91.2, "sst2": 94.7}
    if task not in baselines:
        raise ValueError(f"unknown GLUE task {task!r}; choose from {sorted(baselines)}")
    fc = LayerKind.FC
    layers = []
    for enc in range(_ENCODERS):
        for proj in ("q", "k", "v", "o"):
            layers.append(
                LayerSpec(f"enc{enc}_{proj}", fc,
                          m=_SEQ_LEN, k=_HIDDEN, n=_HIDDEN,
                          w_nnz=8, a_nnz=8,
                          weight_density=0.9, act_density=0.85)
            )
        layers.append(
            LayerSpec(f"enc{enc}_fc1", fc,
                      m=_SEQ_LEN, k=_HIDDEN, n=_INTERMEDIATE,
                      w_nnz=w_nnz, a_nnz=a_nnz,
                      act_density=min(1.0, a_nnz / 8.0))
        )
        layers.append(
            LayerSpec(f"enc{enc}_fc2", fc,
                      m=_SEQ_LEN, k=_INTERMEDIATE, n=_HIDDEN,
                      w_nnz=w_nnz, a_nnz=a_nnz,
                      act_density=min(1.0, a_nnz / 8.0))
        )
    return ModelSpec(
        name=f"ibert_base_{task}",
        dataset=f"glue-{task}",
        layers=layers,
        baseline_accuracy=baselines[task],
        notes=f"{w_nnz}/8 W-DBB and {a_nnz}/8 A-DBB on FC1/FC2 only",
    )
