"""AlexNet (ImageNet) layer specs and DBB density profile.

Shapes follow the original grouped AlexNet at 227x227 input; grouped convs
are modelled as a single GEMM with the per-group reduction length (same
MAC count). The density profile encodes Table 3's evaluated variant:
4/8 W-DBB (first layer excluded) and per-layer A-DBB averaging 3.9/8,
with the early layers denser (Fig. 12's "overheads inflate energy on
denser layers" is conv1/conv2; conv3-5 are the high-sparsity layers).
"""

from __future__ import annotations

from repro.models.specs import LayerKind, LayerSpec, ModelSpec

__all__ = ["alexnet_spec"]


def alexnet_spec() -> ModelSpec:
    """AlexNet with the paper's joint A/W-DBB profile (Table 3 row *)."""
    conv = LayerKind.CONV
    fc = LayerKind.FC
    layers = [
        # First layer: excluded from weight pruning, dense image input.
        LayerSpec("conv1", conv, m=3025, k=363, n=96,
                  w_nnz=8, a_nnz=8, weight_density=0.92, act_density=1.0),
        LayerSpec("conv2", conv, m=729, k=1200, n=256,
                  w_nnz=4, a_nnz=4, act_density=0.45),
        LayerSpec("conv3", conv, m=169, k=2304, n=384,
                  w_nnz=4, a_nnz=3, act_density=0.34),
        LayerSpec("conv4", conv, m=169, k=1728, n=384,
                  w_nnz=4, a_nnz=3, act_density=0.33),
        LayerSpec("conv5", conv, m=169, k=1728, n=256,
                  w_nnz=4, a_nnz=2, act_density=0.22),
        LayerSpec("fc6", fc, m=1, k=9216, n=4096,
                  w_nnz=4, a_nnz=2, act_density=0.20),
        LayerSpec("fc7", fc, m=1, k=4096, n=4096,
                  w_nnz=4, a_nnz=2, act_density=0.20),
        LayerSpec("fc8", fc, m=1, k=4096, n=1000,
                  w_nnz=4, a_nnz=2, act_density=0.22),
    ]
    return ModelSpec(
        name="alexnet",
        dataset="imagenet",
        layers=layers,
        baseline_accuracy=55.7,
        notes="4/8 W-DBB (conv1 excluded), per-layer A-DBB avg ~3.9/8",
    )
