"""VGG-16 (ImageNet) layer specs and DBB density profile.

All convs are 3x3/pad 1 at 224x224 input. Table 3's evaluated variant:
3/8 W-DBB (first layer excluded), per-layer A-DBB averaging 3.1/8.
"""

from __future__ import annotations

from repro.models.specs import LayerKind, LayerSpec, ModelSpec

__all__ = ["vgg16_spec"]

# (name, spatial, in_channels, out_channels, a_nnz, act_density)
_CONVS = [
    ("conv1_1", 224, 3, 64, 8, 1.00),
    ("conv1_2", 224, 64, 64, 5, 0.58),
    ("conv2_1", 112, 64, 128, 4, 0.47),
    ("conv2_2", 112, 128, 128, 4, 0.45),
    ("conv3_1", 56, 128, 256, 3, 0.36),
    ("conv3_2", 56, 256, 256, 3, 0.34),
    ("conv3_3", 56, 256, 256, 3, 0.32),
    ("conv4_1", 28, 256, 512, 2, 0.24),
    ("conv4_2", 28, 512, 512, 2, 0.22),
    ("conv4_3", 28, 512, 512, 2, 0.21),
    ("conv5_1", 14, 512, 512, 2, 0.20),
    ("conv5_2", 14, 512, 512, 2, 0.19),
    ("conv5_3", 14, 512, 512, 2, 0.18),
]


def vgg16_spec() -> ModelSpec:
    """VGG-16 with the paper's joint A/W-DBB profile (Table 3 row *)."""
    layers = []
    for i, (name, spatial, c_in, c_out, a_nnz, act_density) in enumerate(_CONVS):
        first = i == 0
        layers.append(
            LayerSpec(
                name,
                LayerKind.CONV,
                m=spatial * spatial,
                k=9 * c_in,
                n=c_out,
                w_nnz=8 if first else 3,
                a_nnz=a_nnz,
                weight_density=0.92 if first else None,
                act_density=act_density,
            )
        )
    layers += [
        LayerSpec("fc6", LayerKind.FC, m=1, k=25088, n=4096,
                  w_nnz=3, a_nnz=2, act_density=0.20),
        LayerSpec("fc7", LayerKind.FC, m=1, k=4096, n=4096,
                  w_nnz=3, a_nnz=2, act_density=0.20),
        LayerSpec("fc8", LayerKind.FC, m=1, k=4096, n=1000,
                  w_nnz=3, a_nnz=2, act_density=0.22),
    ]
    return ModelSpec(
        name="vgg16",
        dataset="imagenet",
        layers=layers,
        baseline_accuracy=71.5,
        notes="3/8 W-DBB (conv1_1 excluded), per-layer A-DBB avg ~3.1/8",
    )
