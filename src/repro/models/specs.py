"""Analytic layer/model descriptions for the performance model.

A :class:`LayerSpec` captures what the accelerator models need about one
GEMM-lowered layer: the GEMM shape, the (post-pruning) weight density
profile, and the activation density profile (both the DBB structure —
``a_nnz``/``w_nnz`` — and the resulting element densities).

Density conventions (BZ = 8 throughout, as in the paper):

- ``w_nnz``: W-DBB bound for this layer; ``8`` means unpruned/dense
  (e.g. the first conv layer, excluded from pruning per Table 3 note 2).
- ``a_nnz``: per-layer tuned A-DBB bound; ``8`` means dense bypass
  (early layers; also anything above the 5-stage DAP hardware cap).
- ``weight_density`` / ``act_density``: actual element-level non-zero
  fractions seen at run time (used for ZVCG gating and switching
  activity). These can be lower than ``nnz/8`` because DBB blocks may be
  underfull.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["LayerKind", "LayerSpec", "ModelSpec", "BLOCK_SIZE"]

BLOCK_SIZE = 8


class LayerKind(enum.Enum):
    CONV = "conv"
    DWCONV = "dwconv"
    FC = "fc"

    @property
    def memory_bound(self) -> bool:
        """FC and depthwise layers are memory bound on S2TA (Sec. 8.3)."""
        return self in (LayerKind.FC, LayerKind.DWCONV)


@dataclass(frozen=True)
class LayerSpec:
    """One GEMM-lowered layer of a benchmark network."""

    name: str
    kind: LayerKind
    m: int  # output pixels (rows of the activation matrix)
    k: int  # reduction length (im2col patch size)
    n: int  # output channels
    w_nnz: int = 4
    a_nnz: int = 8
    weight_density: Optional[float] = None
    act_density: Optional[float] = None
    #: Explicit im2col window size (KH*KW). ``None`` lets the memory
    #: model infer it from K's square-kernel divisors — exact for the
    #: current zoo, but a 1x1 layer whose channel count divides by 9/25
    #: would be mis-detected, so new specs should state it.
    window: Optional[int] = None

    def __post_init__(self) -> None:
        for dim, label in ((self.m, "m"), (self.k, "k"), (self.n, "n")):
            if dim < 1:
                raise ValueError(f"{label} must be >= 1, got {dim}")
        for nnz, label in ((self.w_nnz, "w_nnz"), (self.a_nnz, "a_nnz")):
            if not 1 <= nnz <= BLOCK_SIZE:
                raise ValueError(f"{label} must be in [1, {BLOCK_SIZE}], got {nnz}")
        if self.window is not None and (
                self.window < 1 or self.k % self.window != 0):
            raise ValueError(
                f"window must be >= 1 and divide k={self.k}, "
                f"got {self.window}")

    @property
    def macs(self) -> int:
        """Dense MAC count of the lowered GEMM."""
        return self.m * self.k * self.n

    @property
    def w_density(self) -> float:
        """Element-level weight density (defaults to the DBB bound)."""
        if self.weight_density is not None:
            return self.weight_density
        return self.w_nnz / BLOCK_SIZE

    @property
    def a_density(self) -> float:
        """Element-level activation density (defaults to the DBB bound)."""
        if self.act_density is not None:
            return self.act_density
        return self.a_nnz / BLOCK_SIZE

    @property
    def weight_pruned(self) -> bool:
        return self.w_nnz < BLOCK_SIZE

    @property
    def dap_bypassed(self) -> bool:
        return self.a_nnz >= BLOCK_SIZE

    @property
    def memory_bound(self) -> bool:
        return self.kind.memory_bound

    @property
    def weight_bytes(self) -> int:
        """Dense INT8 weight footprint of the layer."""
        return self.k * self.n

    @property
    def activation_bytes(self) -> int:
        """Dense INT8 input-activation footprint (im2col matrix)."""
        return self.m * self.k


@dataclass
class ModelSpec:
    """A benchmark network as the list of its GEMM-lowered layers."""

    name: str
    dataset: str
    layers: List[LayerSpec]
    baseline_accuracy: Optional[float] = None
    notes: str = ""
    _by_name: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in {self.name}: {names}")
        self._by_name = {layer.name: layer for layer in self.layers}

    def layer(self, name: str) -> LayerSpec:
        return self._by_name[name]

    @property
    def conv_layers(self) -> List[LayerSpec]:
        return [l for l in self.layers if l.kind is LayerKind.CONV]

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def conv_macs(self) -> int:
        return sum(l.macs for l in self.conv_layers)

    def mac_weighted_a_nnz(self, conv_only: bool = True) -> float:
        """MAC-weighted average A-DBB density bound (Table 3 reports this)."""
        layers = self.conv_layers if conv_only else self.layers
        total = sum(l.macs for l in layers)
        if total == 0:
            return float(BLOCK_SIZE)
        return sum(l.a_nnz * l.macs for l in layers) / total

    def mac_weighted_act_density(self, conv_only: bool = True) -> float:
        layers = self.conv_layers if conv_only else self.layers
        total = sum(l.macs for l in layers)
        if total == 0:
            return 1.0
        return sum(l.a_density * l.macs for l in layers) / total

    def __repr__(self) -> str:
        return (f"ModelSpec({self.name!r}, layers={len(self.layers)}, "
                f"macs={self.total_macs / 1e6:.1f}M)")
