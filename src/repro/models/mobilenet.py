"""MobileNetV1 1.0-224 (ImageNet) layer specs and DBB density profile.

Pointwise (1x1) convs carry ~95% of the MACs and are the DBB targets;
depthwise layers are memory bound on S2TA (Sec. 8.3) and are not
weight-pruned (their reduction axis is only KH*KW = 9, with no channel
blocking). Table 3's evaluated variant: 4/8 W-DBB on pointwise/FC layers
(first conv excluded), per-layer A-DBB averaging 4.8/8 — MobileNet
activations are comparatively dense, which is why its A-DBB is the
highest of the four ImageNet models.
"""

from __future__ import annotations

from repro.models.specs import LayerKind, LayerSpec, ModelSpec

__all__ = ["mobilenet_v1_spec"]

# (index, spatial_out_of_dw, c_in, c_out, dw_stride, pw_a_nnz, pw_act_density)
_BLOCKS = [
    (1, 112, 32, 64, 1, 8, 0.72),
    (2, 56, 64, 128, 2, 6, 0.58),
    (3, 56, 128, 128, 1, 6, 0.55),
    (4, 28, 128, 256, 2, 5, 0.48),
    (5, 28, 256, 256, 1, 5, 0.45),
    (6, 14, 256, 512, 2, 5, 0.44),
    (7, 14, 512, 512, 1, 4, 0.40),
    (8, 14, 512, 512, 1, 4, 0.38),
    (9, 14, 512, 512, 1, 4, 0.37),
    (10, 14, 512, 512, 1, 4, 0.36),
    (11, 14, 512, 512, 1, 4, 0.35),
    (12, 7, 512, 1024, 2, 4, 0.34),
    (13, 7, 1024, 1024, 1, 4, 0.33),
]


def mobilenet_v1_spec() -> ModelSpec:
    """MobileNetV1 with the paper's joint A/W-DBB profile (Table 3 row *)."""
    layers = [
        LayerSpec("conv1", LayerKind.CONV, m=112 * 112, k=27, n=32,
                  w_nnz=8, a_nnz=8, weight_density=0.92, act_density=1.0),
    ]
    for idx, spatial, c_in, c_out, stride, a_nnz, act_density in _BLOCKS:
        dw_spatial = spatial  # output spatial extent of the dw conv
        layers.append(
            LayerSpec(
                f"dw{idx}",
                LayerKind.DWCONV,
                m=dw_spatial * dw_spatial * c_in,
                k=9,
                n=1,
                w_nnz=8,  # depthwise not weight-pruned
                a_nnz=8,
                act_density=min(1.0, act_density + 0.15),
            )
        )
        layers.append(
            LayerSpec(
                f"pw{idx}",
                LayerKind.CONV,
                m=spatial * spatial,
                k=c_in,
                n=c_out,
                w_nnz=4,
                a_nnz=a_nnz,
                act_density=act_density,
            )
        )
    layers.append(
        LayerSpec("fc", LayerKind.FC, m=1, k=1024, n=1000,
                  w_nnz=4, a_nnz=4, act_density=0.35)
    )
    return ModelSpec(
        name="mobilenet_v1",
        dataset="imagenet",
        layers=layers,
        baseline_accuracy=70.1,
        notes="4/8 W-DBB on pointwise/FC (conv1 excluded), A-DBB avg ~4.8/8",
    )
