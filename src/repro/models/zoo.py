"""Model registry and buildable (runnable) networks.

``MODEL_SPECS`` registers the analytic specs used by the performance
model. The builders return :class:`repro.nn.Sequential` networks with
random (He-init) weights — small enough to execute end to end through the
DBB pipeline and the functional accelerator simulator in tests/examples.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.models.alexnet import alexnet_spec
from repro.models.ibert import ibert_spec
from repro.models.lenet import lenet5_spec
from repro.models.mobilenet import mobilenet_v1_spec
from repro.models.resnet import resnet50_spec
from repro.models.specs import ModelSpec
from repro.models.vgg import vgg16_spec
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.model import Sequential

__all__ = ["MODEL_SPECS", "get_spec", "build_lenet5", "build_tiny_cnn",
           "build_tiny_mobilenet"]

MODEL_SPECS: Dict[str, Callable[[], ModelSpec]] = {
    "lenet5": lenet5_spec,
    "alexnet": alexnet_spec,
    "vgg16": vgg16_spec,
    "mobilenet_v1": mobilenet_v1_spec,
    "resnet50": resnet50_spec,
    "ibert": ibert_spec,
}


def get_spec(name: str) -> ModelSpec:
    """Look up an analytic model spec by registry name."""
    try:
        return MODEL_SPECS[name]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_SPECS)}"
        ) from None


def build_lenet5(rng: Optional[np.random.Generator] = None) -> Sequential:
    """Runnable LeNet-5 (28x28x1 input) with random weights."""
    rng = rng or np.random.default_rng(0)
    return Sequential(
        [
            Conv2d(1, 6, (5, 5), name="conv1", rng=rng),
            ReLU(name="relu1"),
            MaxPool2d(2, name="pool1"),
            Conv2d(6, 16, (5, 5), name="conv2", rng=rng),
            ReLU(name="relu2"),
            MaxPool2d(2, name="pool2"),
            Flatten(name="flatten"),
            Linear(256, 120, name="fc3", rng=rng),
            ReLU(name="relu3"),
            Linear(120, 84, name="fc4", rng=rng),
            ReLU(name="relu4"),
            Linear(84, 10, name="fc5", rng=rng),
        ],
        name="lenet5",
    )


def build_tiny_cnn(rng: Optional[np.random.Generator] = None) -> Sequential:
    """A small conv net (16x16x8 input) for fast integration tests.

    Channel counts are multiples of BZ=8 so every GEMM blocks cleanly.
    """
    rng = rng or np.random.default_rng(1)
    return Sequential(
        [
            Conv2d(8, 16, (3, 3), padding=1, name="conv1", rng=rng),
            ReLU(name="relu1"),
            Conv2d(16, 16, (3, 3), padding=1, name="conv2", rng=rng),
            ReLU(name="relu2"),
            MaxPool2d(2, name="pool"),
            Flatten(name="flatten"),
            Linear(16 * 8 * 8, 32, name="fc1", rng=rng),
            ReLU(name="relu3"),
            Linear(32, 10, name="fc2", rng=rng),
        ],
        name="tiny_cnn",
    )


def build_tiny_mobilenet(rng: Optional[np.random.Generator] = None) -> Sequential:
    """A depthwise-separable toy net exercising the DW code path."""
    rng = rng or np.random.default_rng(2)
    return Sequential(
        [
            Conv2d(8, 16, (3, 3), padding=1, name="conv1", rng=rng),
            ReLU(name="relu1"),
            DepthwiseConv2d(16, (3, 3), padding=1, name="dw1", rng=rng),
            ReLU(name="relu_dw1"),
            Conv2d(16, 32, (1, 1), name="pw1", rng=rng),
            ReLU(name="relu_pw1"),
            AvgPool2d(16, name="gap"),
            Flatten(name="flatten"),
            Linear(32, 10, name="fc", rng=rng),
        ],
        name="tiny_mobilenet",
    )
