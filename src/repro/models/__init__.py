"""Benchmark model zoo.

Two kinds of artifacts:

- **Analytic model specs** (:class:`~repro.models.specs.ModelSpec`): the
  per-layer GEMM shapes and DBB density profiles of the paper's benchmark
  networks (LeNet-5, AlexNet, VGG-16, MobileNetV1, ResNet-50V1, I-BERT).
  These drive the performance/energy models; layer shapes follow the
  original architectures and density profiles are encoded to match the
  per-model averages the paper reports in Table 3.
- **Runnable models** (:mod:`~repro.models.zoo`): small numpy networks
  (LeNet-5 and a tiny CNN) that execute end to end through the DBB
  pipeline and the functional accelerator simulator.
"""

from repro.models.alexnet import alexnet_spec
from repro.models.ibert import ibert_spec
from repro.models.lenet import lenet5_spec
from repro.models.mobilenet import mobilenet_v1_spec
from repro.models.resnet import resnet50_spec
from repro.models.specs import LayerKind, LayerSpec, ModelSpec
from repro.models.vgg import vgg16_spec
from repro.models.zoo import MODEL_SPECS, build_lenet5, build_tiny_cnn, get_spec

__all__ = [
    "LayerKind",
    "LayerSpec",
    "ModelSpec",
    "alexnet_spec",
    "vgg16_spec",
    "mobilenet_v1_spec",
    "resnet50_spec",
    "lenet5_spec",
    "ibert_spec",
    "MODEL_SPECS",
    "get_spec",
    "build_lenet5",
    "build_tiny_cnn",
]
