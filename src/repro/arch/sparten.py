"""SparTen functional simulator: bitmask inner-join PEs (MICRO'19).

Cycle-level model of SparTen's sparse vector-vector datapath
(Gondimalla et al.) for one GEMM ``C = A @ W``: both operands are
bitmask-encoded sparse vectors, and each PE computes one output's
inner product by *inner-joining* the two bitmasks — AND the masks,
prefix-sum the result to gather the matching non-zero pairs, and feed
the pairs to the PE's single multiplier, one pair per cycle. The join
machinery is what the analytic model charges as ``gather_ops``
(:class:`repro.accel.sparten.SparTen` prices three prefix-sum/gather
steps per matched pair) and the output-buffer read-modify-write as
``scatter_acc_ops``.

Scheduling follows SparTen's software *greedy balance* pass: whole
output columns (filters) are the work chunks, and the scheduler assigns
them to the ``pes`` processing elements longest-first (LPT). The
simulated makespan is the busiest PE's matched-pair count; dividing by
``pipeline_utilization`` models the join pipeline's sustained
efficiency (chunk restarts, prefix-sum latency, output-buffer port
conflicts) — the same constant the analytic model folds into its
``utilization``, so the two cycle models differ only by the *measured*
filter-load imbalance.

Everything is struct-of-arrays numpy (the :mod:`repro.arch.systolic`
idiom): the per-pair triple loop collapses into one dot product of
per-reduction-index non-zero counts per output column, and the LPT pass
walks columns, not pairs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.arch.events import EventCounts
from repro.core.gemm import dense_gemm

__all__ = ["SparTenConfig", "SparTenResult", "SparTenEngine"]


@dataclass(frozen=True)
class SparTenConfig:
    """SparTen design point (published: 45 nm, 32 PEs x 1 MAC)."""

    pes: int = 32
    #: Prefix-sum/gather steps charged per matched pair (bitmask AND,
    #: prefix-sum offset, operand gather) — mirrors the analytic model.
    gather_steps_per_pair: int = 3
    #: Sustained fraction of a PE's MAC issue slots doing useful work
    #: once the join pipeline's restarts and port conflicts are paid.
    pipeline_utilization: float = 0.65
    #: Activation refill cap across output-column groups (the published
    #: dataflow re-reads the bitmask-compressed activations once per
    #: group of ``pes`` filters, up to this many passes).
    pass_cap: int = 8

    def __post_init__(self) -> None:
        if self.pes < 1:
            raise ValueError(f"pes must be >= 1, got {self.pes}")
        if self.gather_steps_per_pair < 0:
            raise ValueError("gather_steps_per_pair must be >= 0")
        if not 0.0 < self.pipeline_utilization <= 1.0:
            raise ValueError(
                f"pipeline_utilization must be in (0, 1], "
                f"got {self.pipeline_utilization}")
        if self.pass_cap < 1:
            raise ValueError(f"pass_cap must be >= 1, got {self.pass_cap}")


@dataclass
class SparTenResult:
    """Result of one simulated GEMM on the bitmask inner-join engine."""

    output: np.ndarray
    cycles: int
    events: EventCounts
    #: Final per-PE matched-pair loads of the greedy schedule.
    pe_loads: np.ndarray

    @property
    def load_balance(self) -> float:
        """Mean/max PE load — 1.0 is a perfectly balanced schedule."""
        peak = self.pe_loads.max(initial=0)
        return float(self.pe_loads.mean() / peak) if peak else 1.0


def greedy_lpt_loads(job_lengths: np.ndarray, workers: int) -> np.ndarray:
    """Longest-processing-time-first greedy assignment.

    Returns the per-worker total load after assigning every job,
    longest first, to the least-loaded worker — SparTen's software
    greedy-balance pass over filters. Deterministic: ties break on
    worker index via the heap ordering.
    """
    loads = [(0, w) for w in range(workers)]
    heapq.heapify(loads)
    out = np.zeros(workers, dtype=np.int64)
    for length in sorted((int(j) for j in job_lengths), reverse=True):
        load, w = heapq.heappop(loads)
        load += length
        out[w] = load
        heapq.heappush(loads, (load, w))
    return out


class SparTenEngine:
    """Functional/cycle simulator for one SparTen configuration."""

    def __init__(self, config: SparTenConfig = SparTenConfig()):
        self.config = config

    def run_gemm(self, a: np.ndarray, w: np.ndarray) -> SparTenResult:
        """Execute ``C = A @ W`` on the bitmask inner-join array.

        Events mirror the analytic :class:`repro.accel.sparten.SparTen`
        term for term, with the density closed forms replaced by counts
        measured on the concrete operands (stored non-zeros, matched
        pairs); the cross-validation suite asserts the agreement.
        """
        a = np.asarray(a)
        w = np.asarray(w)
        if a.ndim != 2 or w.ndim != 2 or a.shape[1] != w.shape[0]:
            raise ValueError(f"shape mismatch: A {a.shape} @ W {w.shape}")
        cfg = self.config
        m, k = a.shape
        n = w.shape[1]
        a_nz = a != 0
        w_nz = w != 0
        # Matched pairs of one output (i, j) = popcount(mask_a[i] &
        # mask_w[j]); summed over a column the triple loop separates
        # per reduction index into a dot product (the systolic-family
        # trick): col_fired[j] = sum_k nnz_a(k) * w_nz[k, j].
        a_counts = np.count_nonzero(a_nz, axis=0).astype(np.int64)
        col_fired = a_counts @ w_nz.astype(np.int64)
        fired = int(col_fired.sum())
        # Greedy balance: filters to PEs, longest first; the busiest
        # PE's pair count paces the array.
        pe_loads = greedy_lpt_loads(col_fired, cfg.pes)
        makespan = int(pe_loads.max(initial=0))
        cycles = math.ceil(makespan / cfg.pipeline_utilization)

        events = EventCounts(cycles=cycles)
        events.mac_ops = fired
        events.gather_ops = fired * cfg.gather_steps_per_pair
        # Every product read-modify-writes the large output buffer at a
        # non-contiguous offset (the scatter side of Table 1's ~1 KB of
        # buffering per MAC).
        events.scatter_acc_ops = fired
        # Bitmask-compressed operand storage: measured non-zero payload
        # plus the 1-bit-per-element occupancy masks; activations
        # re-stream once per group of ``pes`` output columns.
        passes = min(max(1, math.ceil(n / cfg.pes)), cfg.pass_cap)
        a_stored = int(np.count_nonzero(a_nz)) + m * k // 8
        w_stored = int(np.count_nonzero(w_nz)) + k * n // 8
        events.sram_a_read_bytes = a_stored * passes
        events.sram_w_read_bytes = w_stored
        events.sram_a_write_bytes = m * n
        events.mcu_elementwise_ops = m * n
        out = dense_gemm(a, w)
        return SparTenResult(output=out, cycles=cycles, events=events,
                             pe_loads=pe_loads)
