"""Microarchitecture models.

Cycle-level functional models of the paper's hardware building blocks:

- :mod:`repro.arch.events`: hardware event counters shared by every model
  (the energy model charges per event).
- :mod:`repro.arch.buffers`: SRAM / register / FIFO buffer models with
  access accounting.
- :mod:`repro.arch.datapath`: the Fig. 6 datapath family — DP8, DP8+ZVCG,
  DP4M8 (W-DBB), DP4M4 (fixed joint DBB) and the time-unrolled DP1M4.
- :mod:`repro.arch.dap_hw`: the cascaded magnitude-maxpool DAP array
  (Fig. 8), bit-exact with the algorithmic DAP.
- :mod:`repro.arch.smt`: the SA-SMT staging-FIFO queueing simulator.
- :mod:`repro.arch.systolic`: output-stationary systolic array simulator
  for the scalar-PE baselines and the S2TA tensor-PE variants.
- :mod:`repro.arch.sparten`: SparTen's bitmask inner-join PE array with
  greedy (LPT) filter scheduling.
- :mod:`repro.arch.eyeriss`: Eyeriss v2's CSC row-stationary PE mesh
  with hierarchical cluster occupancy.
- :mod:`repro.arch.scnn`: SCNN's Cartesian-product PEs with the
  result-scatter crossbar.
- :mod:`repro.arch.memory`: the memory hierarchy — DRAM channel,
  double-buffered SRAM staging, and the tile-schedule DMA walker behind
  the roofline artifacts.
"""

from repro.arch.buffers import FIFO, RegisterFile, Sram
from repro.arch.dap_hw import DAPHardware
from repro.arch.datapath import (
    dp1m4_block,
    dp4m4_block,
    dp4m8_block,
    dp8_dense,
)
from repro.arch.events import EventCounts
from repro.arch.eyeriss import EyerissV2Config, EyerissV2Engine, EyerissV2Result
from repro.arch.memory import (
    DRAMConfig,
    LayerMemoryProfile,
    LayerTraffic,
    MemorySystem,
    OperandStream,
    SRAMStaging,
)
from repro.arch.netsim import NetworkSimResult, simulate_network
from repro.arch.scnn import SCNNConfig, SCNNEngine, SCNNResult
from repro.arch.smt import SMTArrayModel, SMTResult
from repro.arch.sparten import SparTenConfig, SparTenEngine, SparTenResult
from repro.arch.systolic import SystolicArray, SystolicConfig, SystolicResult
from repro.arch.tpe import TensorPE

__all__ = [
    "EventCounts",
    "DRAMConfig",
    "SRAMStaging",
    "MemorySystem",
    "OperandStream",
    "LayerTraffic",
    "LayerMemoryProfile",
    "Sram",
    "RegisterFile",
    "FIFO",
    "dp8_dense",
    "dp4m8_block",
    "dp4m4_block",
    "dp1m4_block",
    "DAPHardware",
    "SMTArrayModel",
    "SMTResult",
    "SystolicArray",
    "SystolicConfig",
    "SystolicResult",
    "SparTenConfig",
    "SparTenEngine",
    "SparTenResult",
    "EyerissV2Config",
    "EyerissV2Engine",
    "EyerissV2Result",
    "SCNNConfig",
    "SCNNEngine",
    "SCNNResult",
    "TensorPE",
    "simulate_network",
    "NetworkSimResult",
]
