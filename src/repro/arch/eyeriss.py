"""Eyeriss v2 functional simulator: CSC row-stationary mesh (JETCAS'19).

Cycle-level model of Eyeriss v2 (Chen et al.) for one GEMM
``C = A @ W``: CSC-compressed weights and activations stream through a
hierarchical mesh of PE clusters; each PE walks its CSC columns,
decodes (row index, value) pairs and multiplies the matching non-zero
operands — the decode/address-generation work the analytic model
charges as ``gather_ops``, with every operand delivery crossing
``noc_hops_per_operand`` hops of the hierarchical NoC (priced as
operand-register events) and the partial sums spiralling through the
cluster's psum network (two accumulator events per pair).

The mapper follows the row-stationary rule: output channels spread
across clusters (the top mesh dimension) and output pixels across the
PEs inside a cluster, with a rotation along the channel groups so that
small-``m`` layers (down to the FC extreme ``m = 1``) still occupy the
whole cluster. Per-PE matched-pair loads come straight from the
measured match matrix; the busiest PE paces the array
(*mesh occupancy*), and ``pipeline_utilization`` models the sustained
CSC-decode efficiency on top — the constant the analytic model folds
into its ``utilization``, so the two cycle models differ only by the
measured mesh imbalance.

All counting is vectorized and never materializes the m x n match
matrix: the mesh slot of a matched pair depends only on the pixel and
channel *residue classes*, so per-PE occupancy reduces to one tiny
class-count matmul plus a rotation fold (see ``_mesh_loads``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.events import EventCounts
from repro.core.gemm import dense_gemm

__all__ = ["EyerissV2Config", "EyerissV2Result", "EyerissV2Engine"]


@dataclass(frozen=True)
class EyerissV2Config:
    """Eyeriss v2 design point (published: 65 nm, 16 clusters x 12 PEs
    x 2 MACs = 384 INT8 MACs at 200 MHz)."""

    clusters: int = 16
    pes_per_cluster: int = 12
    macs_per_pe: int = 2
    #: CSC decode + address-generation steps per matched pair.
    gather_steps_per_pair: int = 3
    #: Hierarchical-mesh hops per operand delivery.
    noc_hops_per_operand: int = 6
    #: Sustained CSC-decode pipeline efficiency of a PE.
    pipeline_utilization: float = 0.7
    #: Output-channel group width of one activation pass.
    group_cols: int = 64
    #: Activation refill cap across output-channel groups.
    pass_cap: int = 6

    def __post_init__(self) -> None:
        for name in ("clusters", "pes_per_cluster", "macs_per_pe",
                     "group_cols", "pass_cap"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.gather_steps_per_pair < 0 or self.noc_hops_per_operand < 0:
            raise ValueError("per-pair step counts must be >= 0")
        if not 0.0 < self.pipeline_utilization <= 1.0:
            raise ValueError(
                f"pipeline_utilization must be in (0, 1], "
                f"got {self.pipeline_utilization}")

    @property
    def hardware_macs(self) -> int:
        return self.clusters * self.pes_per_cluster * self.macs_per_pe


@dataclass
class EyerissV2Result:
    """Result of one simulated GEMM on the row-stationary mesh."""

    output: np.ndarray
    cycles: int
    events: EventCounts
    #: Matched-pair loads per (cluster, PE) mesh slot.
    pe_loads: np.ndarray

    @property
    def mesh_occupancy(self) -> float:
        """Mean/max PE load — 1.0 is a perfectly balanced mapping."""
        peak = self.pe_loads.max(initial=0)
        return float(self.pe_loads.mean() / peak) if peak else 1.0


class EyerissV2Engine:
    """Functional/cycle simulator for one Eyeriss v2 configuration."""

    def __init__(self, config: EyerissV2Config = EyerissV2Config()):
        self.config = config

    def _mesh_loads(self, a_nz: np.ndarray, w_nz: np.ndarray) -> np.ndarray:
        """Per-(cluster, PE) matched-pair loads of the row-stationary
        mapping: cluster = channel mod clusters, PE = (pixel + channel
        group) mod PEs — the group rotation keeps single-pixel (FC)
        layers from collapsing onto one PE per cluster.

        The mesh slot of a pair depends on the pixel only through
        ``i mod P`` and on the channel only through ``(j mod C,
        (j // C) mod P)``, so instead of materializing the m x n match
        matrix the loads reduce over *classes*: per-pixel-class non-zero
        counts (P x k) against per-channel-class counts (k x C*P), one
        tiny matmul, then the rotation folds the two pixel/group phases
        together. Bit-identical with the match-matrix bincount it
        replaces (integer counts, exact in float64), at O((m + n + CP)k)
        instead of O(mkn).
        """
        cfg = self.config
        pes = cfg.pes_per_cluster
        clusters = cfg.clusters
        m, k = a_nz.shape
        n = w_nz.shape[1]
        pad = (-m) % pes
        a_pad = np.concatenate(
            [a_nz, np.zeros((pad, k), dtype=bool)]) if pad else a_nz
        # row_counts[r, k] = number of non-zero activations at reduction
        # index k among pixels with i mod P == r.
        row_counts = a_pad.reshape(-1, pes, k).sum(axis=0,
                                                   dtype=np.float64)
        j = np.arange(n, dtype=np.int64)
        col_class = (j % clusters) * pes + (j // clusters) % pes
        onehot = np.zeros((n, clusters * pes), dtype=np.float64)
        onehot[j, col_class] = 1.0
        col_counts = w_nz.astype(np.float64) @ onehot
        # pair_loads[r, c, g]: matched pairs between pixel class r and
        # channel class (c, g); the PE of such a pair is (r + g) mod P.
        pair_loads = np.rint(row_counts @ col_counts).astype(
            np.int64).reshape(pes, clusters, pes)
        loads = np.zeros((clusters, pes), dtype=np.int64)
        for r in range(pes):
            loads += np.roll(pair_loads[r], r, axis=1)
        return loads.reshape(-1)

    def run_gemm(self, a: np.ndarray, w: np.ndarray) -> EyerissV2Result:
        """Execute ``C = A @ W`` on the CSC row-stationary mesh.

        Events mirror the analytic :class:`repro.accel.eyeriss.EyerissV2`
        term for term with measured counts; the cross-validation suite
        asserts the agreement.
        """
        a = np.asarray(a)
        w = np.asarray(w)
        if a.ndim != 2 or w.ndim != 2 or a.shape[1] != w.shape[0]:
            raise ValueError(f"shape mismatch: A {a.shape} @ W {w.shape}")
        cfg = self.config
        m, k = a.shape
        n = w.shape[1]
        a_nz = a != 0
        w_nz = w != 0
        # Matched pairs per output = popcount of the CSC column
        # intersection; the mesh mapping reduces over pixel/channel
        # classes without materializing the m x n match matrix (counts
        # below 2**53 keep the float64 BLAS exact — the repo-wide
        # integer-GEMM idiom).
        pe_loads = self._mesh_loads(a_nz, w_nz)
        fired = int(pe_loads.sum())
        makespan = -(-int(pe_loads.max(initial=0)) // cfg.macs_per_pe)
        cycles = math.ceil(makespan / cfg.pipeline_utilization)

        events = EventCounts(cycles=cycles)
        events.mac_ops = fired
        events.gather_ops = fired * cfg.gather_steps_per_pair
        # Two operand deliveries per pair, each crossing the mesh.
        events.operand_reg_ops = fired * 2 * cfg.noc_hops_per_operand
        # Partial sums spiral through the PE cluster and the psum NoC.
        events.acc_reg_ops = fired * 2
        # CSC-compressed storage: measured non-zero payload plus the
        # ~1-bit-per-element column encoding; the small on-chip storage
        # forces activation refills per output-channel group.
        passes = min(max(1, math.ceil(n / cfg.group_cols)), cfg.pass_cap)
        a_stored = int(np.count_nonzero(a_nz)) + m * k // 8
        w_stored = int(np.count_nonzero(w_nz)) + k * n // 8
        events.sram_a_read_bytes = a_stored * passes
        events.sram_w_read_bytes = w_stored
        events.sram_a_write_bytes = m * n
        events.mcu_elementwise_ops = m * n
        out = dense_gemm(a, w)
        return EyerissV2Result(output=out, cycles=cycles, events=events,
                               pe_loads=pe_loads)
