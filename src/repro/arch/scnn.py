"""SCNN functional simulator: Cartesian-product PEs (ISCA'17).

Cycle-level model of SCNN (Parashar et al.) for one GEMM ``C = A @ W``:
the canonical result-scatter design. Input activations are partitioned
*spatially* (output pixels interleave across the PE grid) and every PE
computes all output channels for its pixels: per reduction index the PE
multiplies its ``I``-wide non-zero activation vector against the
``F``-wide non-zero weight vector — an all-pairs Cartesian product in
which every product is useful — and scatters the products through a
crossbar into the distributed accumulator banks (Table 1's 1.65 KB of
buffering per MAC; charged as ``scatter_acc_ops``).

The cycle model counts *multiplier issue slots*: per (PE, reduction
index) the ``I x F`` multiplier array needs
``ceil(nnz_act / I) * ceil(nnz_w / F)`` cycles, and the busiest PE
paces the array. Fragmentation is therefore emergent rather than a
constant: on large feature maps the quantization loss approaches the
analytic model's flat ``utilization``, while on late layers with tiny
spatial extents (few pixels per PE) the measured utilization collapses
below it — SCNN's published small-feature-map weakness, which the
cross-validation artifact reports as a genuine (documented) cycle
divergence between the tiers. ``m < pes`` leaves PEs idle outright,
the degenerate FC case.

All counting is vectorized: per-PE activation non-zero counts come from
one padded reshape of the non-zero mask, and the issue-slot sums are
row-vector arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.events import EventCounts
from repro.core.gemm import dense_gemm

__all__ = ["SCNNConfig", "SCNNResult", "SCNNEngine"]


@dataclass(frozen=True)
class SCNNConfig:
    """SCNN design point (published: 16 nm, 64 PEs x 4x4 multipliers)."""

    pes: int = 64
    #: Multiplier-array width along the activation axis (I).
    mults_i: int = 4
    #: Multiplier-array width along the weight axis (F).
    mults_f: int = 4
    #: Crossbar traversal + accumulator-bank RMW steps per product.
    scatter_ops_per_product: int = 3
    #: Output-channel group width of one activation pass.
    group_cols: int = 64
    #: Activation refill cap across output-channel groups.
    pass_cap: int = 8

    def __post_init__(self) -> None:
        for name in ("pes", "mults_i", "mults_f", "group_cols", "pass_cap"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.scatter_ops_per_product < 0:
            raise ValueError("scatter_ops_per_product must be >= 0")

    @property
    def hardware_macs(self) -> int:
        return self.pes * self.mults_i * self.mults_f


@dataclass
class SCNNResult:
    """Result of one simulated GEMM on the Cartesian-product array."""

    output: np.ndarray
    cycles: int
    events: EventCounts
    #: Multiplier issue slots consumed per PE.
    pe_issue_slots: np.ndarray
    #: Fired products / available multiplier slots over the makespan —
    #: the emergent fragmentation the module doc describes.
    multiplier_utilization: float = 0.0


class SCNNEngine:
    """Functional/cycle simulator for one SCNN configuration."""

    def __init__(self, config: SCNNConfig = SCNNConfig()):
        self.config = config

    def run_gemm(self, a: np.ndarray, w: np.ndarray) -> SCNNResult:
        """Execute ``C = A @ W`` on the Cartesian-product PE array.

        Events mirror the analytic :class:`repro.accel.scnn.SCNN` term
        for term with measured counts; the cross-validation suite
        asserts the agreement.
        """
        a = np.asarray(a)
        w = np.asarray(w)
        if a.ndim != 2 or w.ndim != 2 or a.shape[1] != w.shape[0]:
            raise ValueError(f"shape mismatch: A {a.shape} @ W {w.shape}")
        cfg = self.config
        m, k = a.shape
        n = w.shape[1]
        a_nz = a != 0
        w_nz = w != 0
        # Spatial interleave: pixel i lives on PE i mod pes. Per-PE
        # non-zero activation counts per reduction index via one padded
        # reshape: (ceil(m/pes), pes, k) summed over the strip axis.
        pad = (-m) % cfg.pes
        a_pad = np.concatenate(
            [a_nz, np.zeros((pad, k), dtype=bool)]) if pad else a_nz
        na = a_pad.reshape(-1, cfg.pes, k).sum(axis=0, dtype=np.int64)
        nw = np.count_nonzero(w_nz, axis=1).astype(np.int64)
        # All-pairs products are useful; fired = sum_k na(pe,k)*nw(k).
        pe_fired = na @ nw
        fired = int(pe_fired.sum())
        # Issue slots: the I x F multiplier array consumes the Cartesian
        # product in ceil-quantized chunks per (PE, reduction index).
        issue = (-(-na // cfg.mults_i)) @ (-(-nw // cfg.mults_f))
        cycles = int(issue.max(initial=0))

        events = EventCounts(cycles=cycles)
        events.mac_ops = fired
        # The outer product needs no operand gather, but every product
        # pays the crossbar and the distributed-accumulator RMW.
        events.scatter_acc_ops = fired * cfg.scatter_ops_per_product
        # CSR-style compressed storage: one coordinate byte per stored
        # non-zero rides with the payload; activations re-stream per
        # output-channel group when not resident.
        passes = min(max(1, math.ceil(n / cfg.group_cols)), cfg.pass_cap)
        a_stored = int(np.count_nonzero(a_nz)) * 2
        w_stored = int(np.count_nonzero(w_nz)) * 2
        events.sram_a_read_bytes = a_stored * passes
        events.sram_w_read_bytes = w_stored
        events.sram_a_write_bytes = m * n
        events.mcu_elementwise_ops = m * n
        out = dense_gemm(a, w)
        avail = cycles * cfg.hardware_macs
        return SCNNResult(output=out, cycles=cycles, events=events,
                          pe_issue_slots=issue,
                          multiplier_utilization=fired / avail if avail
                          else 0.0)
