"""SA-SMT staging-FIFO queueing simulator (Sec. 2.2, Fig. 3).

SMT-SA time-multiplexes ``T`` independent operand streams (threads) onto
each PE's single MAC. Zero products are skipped, so a PE only needs its
MAC when *both* operands of a thread are non-zero — probability
``d_w * d_a`` for random sparsity. Matching pairs wait in a per-PE
staging FIFO of depth ``Q``; when any PE's FIFO would overflow, the
systolic operand propagation stalls globally (streams cannot advance
selectively in a systolic array).

The paper's INT8 re-implementation measures ~1.6x (T2Q2) and ~1.8x
(T2Q4) speedup at 50%/50% weight/activation sparsity, *with* a large
energy overhead from the FIFO traffic. This Monte Carlo reproduces the
speedup mechanism (capped at T, degraded by overflow stalls that shrink
as Q grows) and counts the FIFO events that drive the energy overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.events import EventCounts

__all__ = ["SMTArrayModel", "SMTResult"]


@dataclass
class SMTResult:
    """Outcome of one SMT array simulation."""

    cycles: int
    stall_cycles: int
    speedup: float          # vs a dense SA running the same T tiles
    mac_utilization: float
    events: EventCounts


class SMTArrayModel:
    """Monte Carlo queueing model of an SMT systolic array.

    Parameters
    ----------
    threads:
        ``T`` — streams multiplexed per PE (paper evaluates T2).
    fifo_depth:
        ``Q`` — staging FIFO depth per PE (paper evaluates Q2 and Q4).
    pes:
        Number of PEs sharing the globally-coupled stall signal. More PEs
        means more frequent worst-case overflow, i.e. lower speedup. The
        default of 48 (with the 32x64 array's skew of 94) calibrates the
        model to the paper's measured 1.6x (T2Q2) / 1.8x (T2Q4) at
        50%/50% sparsity; physically it reflects stall elasticity — a
        FIFO overflow backpressures a neighbourhood, not all 2048 PEs.
    skew:
        Wavefront fill/drain steps charged once per tile.
    """

    def __init__(self, threads: int = 2, fifo_depth: int = 2, pes: int = 48,
                 skew: int = 94):
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if fifo_depth < 1:
            raise ValueError(f"fifo_depth must be >= 1, got {fifo_depth}")
        if pes < 1:
            raise ValueError(f"pes must be >= 1, got {pes}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.threads = threads
        self.fifo_depth = fifo_depth
        self.pes = pes
        # Wavefront fill/drain of the output-stationary schedule; the
        # paper's 32x64 array has rows+cols-2 = 94 skew steps per tile.
        self.skew = skew

    def simulate(
        self,
        weight_density: float,
        act_density: float,
        stream_length: int = 2048,
        rng: Optional[np.random.Generator] = None,
    ) -> SMTResult:
        """Run the queueing simulation for one synthetic GEMM.

        ``stream_length`` is the per-thread operand stream length (the
        reduction dimension of the tile). A dense SA processes the same
        ``T`` tiles in ``T * stream_length`` cycles, which defines the
        speedup denominator.
        """
        for name, d in (("weight", weight_density), ("act", act_density)):
            if not 0.0 <= d <= 1.0:
                raise ValueError(f"{name} density must be in [0, 1], got {d}")
        if stream_length < 1:
            raise ValueError(f"stream_length must be >= 1, got {stream_length}")
        rng = rng or np.random.default_rng(0)
        p_useful = weight_density * act_density
        occupancy = np.zeros(self.pes, dtype=np.int64)
        consumed = 0
        cycles = 0
        stall_cycles = 0
        total_pushes = 0
        total_pops = 0
        # Hard bound so adversarial parameters cannot hang the simulation.
        max_cycles = stream_length * self.threads * 4 + 64
        while consumed < stream_length and cycles < max_cycles:
            cycles += 1
            # Service: each PE's MAC pops at most one pending pair.
            served = occupancy > 0
            occupancy[served] -= 1
            total_pops += int(np.count_nonzero(served))
            # Arrivals: all threads advance one stream element in lockstep
            # unless some PE's FIFO would overflow.
            arrivals = rng.binomial(self.threads, p_useful, size=self.pes)
            if np.any(occupancy + arrivals > self.fifo_depth):
                stall_cycles += 1
                continue  # global stall: operand wavefront frozen
            occupancy += arrivals
            total_pushes += int(arrivals.sum())
            consumed += 1
        # Drain the FIFOs, then account the wavefront fill/drain skew.
        remaining = int(occupancy.max()) if occupancy.size else 0
        cycles += remaining + self.skew
        total_pops += int(occupancy.sum())
        # The dense SA pays the skew once for the same tile, not per thread.
        dense_cycles = self.threads * stream_length + self.skew
        speedup = dense_cycles / cycles if cycles else 0.0
        useful_macs = total_pushes
        events = EventCounts(
            mac_ops=useful_macs,
            gated_mac_ops=cycles * self.pes - useful_macs,
            fifo_push_ops=total_pushes,
            fifo_pop_ops=total_pops,
            cycles=cycles,
        )
        utilization = useful_macs / (cycles * self.pes) if cycles else 0.0
        return SMTResult(
            cycles=cycles,
            stall_cycles=stall_cycles,
            speedup=speedup,
            mac_utilization=utilization,
            events=events,
        )

    def speedup(
        self,
        weight_density: float,
        act_density: float,
        stream_length: int = 2048,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Convenience wrapper returning only the speedup factor."""
        return self.simulate(
            weight_density, act_density, stream_length, rng=rng
        ).speedup
