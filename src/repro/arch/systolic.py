"""Output-stationary systolic array simulator (scalar PE and tensor PE).

Simulates one GEMM on a systolic array in any of the paper's four
execution modes, producing the bit-exact result matrix, the cycle count
of the output-stationary schedule, and the hardware event counts that
drive the energy model. Tiles of one layer pipeline back to back, so
the wavefront fill/drain skew is paid once per GEMM — the same
convention as the analytic accelerator models, making the two cycle
models bit-equal on matched geometries (the cross-validation suite
asserts exact agreement):

- ``DENSE`` — classic scalar-PE SA (Fig. 6a / TPU-style baseline).
- ``ZVCG`` — scalar-PE SA with zero-value clock gating (Fig. 6b): same
  cycles, gated events on zero operands.
- ``WDBB`` — S2TA-W: a TPE array with DP4M8 datapaths (Fig. 6c)
  consuming 4/8-compressed weights and dense activations; ``BZ/NNZ_w``
  throughput gain.
- ``AWDBB`` — S2TA-AW: the time-unrolled TPE array with DP1M4 datapaths
  (Fig. 6e); activations are DAP-pruned and serialized, so each weight
  block costs ``a_nnz`` cycles and per-layer density is a pure cycle
  knob (speedup ``BZ/a_nnz``).

Both DBB modes also model the hardware's dense-weight fallback (Sec. 4)
for unpruned layers via ``run_gemm(..., w_dense=True)``: ``WDBB`` takes
``ceil(BZ/NNZ)`` passes per uncompressed block, ``AWDBB`` streams
uncompressed weight blocks. Event accounting (operand-register reuse,
accumulator gating, compressed block bytes) matches the analytic
accelerator models in :mod:`repro.accel` term for term, which is what the
functional full-model pipeline cross-validates.

The TPE organization (Sec. 6.1) is parameterized by ``tpe_a`` x ``tpe_c``
(activation blocks x weight blocks per TPE, the outer-product dims); the
scalar-PE baselines are the degenerate 1x1 case. TPE data reuse shows up
as fewer operand-register and accumulator events per MAC — the effect
behind Table 1's buffer-per-MAC comparison.

All event counting is vectorized: the data-dependent fired-MAC counts
reduce to dot products of per-reduction-index non-zero counts (the
bitmask-intersection popcount sum separates per index — see
:mod:`repro.core.reference` for the retained per-block walk they are
fuzz-tested against). The ``AWDBB`` path needs no operand compression at
all; ``WDBB`` compresses weights through the shared
:func:`repro.core.gemm.compress_cached` memo, so a workload swept across
modes/density points compresses its weights at most once.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.events import EventCounts
from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec
from repro.core.gemm import compress_cached, dbb_gemm, dense_gemm
from repro.core.pruning import is_dbb_compliant

__all__ = ["Mode", "SystolicConfig", "SystolicResult", "SystolicArray"]


class Mode(enum.Enum):
    DENSE = "dense"
    ZVCG = "zvcg"
    WDBB = "wdbb"
    AWDBB = "awdbb"


@dataclass(frozen=True)
class SystolicConfig:
    """Array geometry and execution mode.

    ``rows`` x ``cols`` is the PE/TPE grid (paper: 32x64 scalar baseline,
    8x8 TPEs for S2TA-AW). ``tpe_a``/``tpe_c`` are the per-TPE outer
    product dims (8x4 for the paper's 8x4x4_8x8 design point; must be 1
    for the scalar modes).
    """

    rows: int = 4
    cols: int = 4
    mode: Mode = Mode.DENSE
    w_spec: DBBSpec = DBBSpec(8, 4)
    a_spec: DBBSpec = DBBSpec(8, 4)
    tpe_a: int = 1
    tpe_c: int = 1

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"array dims must be >= 1, got {self.rows}x{self.cols}")
        if self.tpe_a < 1 or self.tpe_c < 1:
            raise ValueError("TPE dims must be >= 1")
        if self.mode in (Mode.DENSE, Mode.ZVCG) and (self.tpe_a, self.tpe_c) != (1, 1):
            raise ValueError(f"{self.mode.value} mode uses scalar PEs (tpe 1x1)")
        if self.mode is Mode.AWDBB and self.w_spec.block_size != self.a_spec.block_size:
            raise ValueError("AWDBB requires matching weight/activation BZ")

    @property
    def eff_rows(self) -> int:
        """Output rows covered per tile (TPE A-dim widens the tile)."""
        return self.rows * self.tpe_a

    @property
    def eff_cols(self) -> int:
        return self.cols * self.tpe_c

    @property
    def hardware_macs(self) -> int:
        """Physical MAC count (Table 4's "Hardware MACs" row)."""
        per_tpe = self.tpe_a * self.tpe_c
        if self.mode is Mode.WDBB:
            per_tpe *= self.w_spec.max_nnz  # DP4M8: NNZ MACs per DP unit
        return self.rows * self.cols * per_tpe


@dataclass
class SystolicResult:
    """Result of one simulated GEMM."""

    output: np.ndarray
    cycles: int
    events: EventCounts
    mode: Mode

    @property
    def mac_utilization(self) -> float:
        return self.events.mac_utilization


class SystolicArray:
    """Functional/cycle simulator for one array configuration."""

    def __init__(self, config: SystolicConfig):
        self.config = config

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run_gemm(
        self,
        a: np.ndarray,
        w: np.ndarray,
        a_nnz: Optional[int] = None,
        w_dense: bool = False,
    ) -> SystolicResult:
        """Execute ``C = A @ W`` on the configured array.

        ``a_nnz`` selects the per-layer A-DBB density in ``AWDBB`` mode
        (default: the configured activation spec's bound); the simulator
        applies DAP itself, as the hardware does at the activation-buffer
        write port. In ``WDBB``/``AWDBB`` modes the weights must already
        satisfy the weight spec (statically pruned offline) unless
        ``w_dense`` requests the hardware's dense-weight fallback (Sec. 4,
        used for unpruned layers such as the first conv): ``WDBB`` then
        runs ``ceil(BZ/NNZ)`` passes per block over uncompressed weight
        blocks, and ``AWDBB`` streams uncompressed weight blocks while the
        activation serialization is unchanged.
        """
        a = np.asarray(a)
        w = np.asarray(w)
        if a.ndim != 2 or w.ndim != 2 or a.shape[1] != w.shape[0]:
            raise ValueError(f"shape mismatch: A {a.shape} @ W {w.shape}")
        mode = self.config.mode
        if mode is Mode.DENSE:
            return self._run_scalar(a, w, zvcg=False)
        if mode is Mode.ZVCG:
            return self._run_scalar(a, w, zvcg=True)
        if mode is Mode.WDBB:
            return self._run_wdbb(a, w, w_dense=w_dense)
        return self._run_awdbb(a, w, a_nnz, w_dense=w_dense)

    # ------------------------------------------------------------------ #
    # scalar-PE baselines
    # ------------------------------------------------------------------ #

    def _tile_counts(self, m: int, n: int) -> tuple:
        cfg = self.config
        tiles_m = math.ceil(m / cfg.eff_rows)
        tiles_n = math.ceil(n / cfg.eff_cols)
        return tiles_m, tiles_n

    def _skew(self) -> int:
        """Wavefront fill of the output-stationary schedule, in steps."""
        return self.config.rows + self.config.cols - 2

    def _run_scalar(self, a: np.ndarray, w: np.ndarray, zvcg: bool
                    ) -> SystolicResult:
        cfg = self.config
        m, k = a.shape
        n = w.shape[1]
        tiles_m, tiles_n = self._tile_counts(m, n)
        tiles = tiles_m * tiles_n
        # Tiles pipeline back to back; the wavefront skew is paid once.
        cycles = tiles * k + self._skew()
        slots = tiles * cfg.rows * cfg.cols * k  # issued MAC slots (padded)
        # useful = sum_{i,j,k} a_nz[i,k] * w_nz[k,j] separates per
        # reduction index into one dot product of non-zero counts — the
        # same collapse the DBB modes use (bit-identical with the m*k*n
        # matmul it replaces, at O(mk + kn) instead of O(mkn)).
        a_nz_cols = np.count_nonzero(a, axis=0).astype(np.int64)
        w_nz_rows = np.count_nonzero(w, axis=1).astype(np.int64)
        useful = int(a_nz_cols @ w_nz_rows)
        events = EventCounts(cycles=cycles)
        if zvcg:
            events.mac_ops = useful
            events.gated_mac_ops = slots - useful
        else:
            # Dense MACs fire on every real (M, K, N) triple; tile-padding
            # slots carry zero operands and count as gated, matching the
            # analytic DenseSA model.
            dense_macs = m * k * n
            events.mac_ops = dense_macs
            events.gated_mac_ops = slots - dense_macs
        # Operand pipeline registers: one a-hop and one w-hop per slot.
        # ZVCG gates the register when its operand is zero.
        a_hops = slots  # each activation hop feeds exactly one MAC slot
        w_hops = slots
        a_active = int(a_nz_cols.sum()) * tiles_n * cfg.cols
        w_active = int(w_nz_rows.sum()) * tiles_m * cfg.rows
        if zvcg:
            events.operand_reg_ops = min(a_active, a_hops) + min(w_active, w_hops)
            events.gated_operand_reg_ops = (
                a_hops + w_hops - events.operand_reg_ops
            )
            events.acc_reg_ops = useful
            events.gated_acc_reg_ops = slots - useful
        else:
            events.operand_reg_ops = a_hops + w_hops
            events.acc_reg_ops = slots
        self._add_sram_events(events, m, k, n,
                              a_bytes_per_pass=m * k,
                              w_bytes_per_pass=k * n,
                              tiles_m=tiles_m, tiles_n=tiles_n)
        out = dense_gemm(a, w)
        return SystolicResult(output=out, cycles=cycles, events=events,
                              mode=cfg.mode)

    # ------------------------------------------------------------------ #
    # S2TA-W: DP4M8 TPE array, compressed weights, dense activations
    # ------------------------------------------------------------------ #

    def _check_weights(self, w: np.ndarray) -> None:
        spec = self.config.w_spec
        k = w.shape[0]
        pad = (-k) % spec.block_size
        wt = w.T
        if pad:
            wt = np.concatenate(
                [wt, np.zeros((wt.shape[0], pad), dtype=wt.dtype)], axis=1
            )
        if not is_dbb_compliant(wt, spec):
            raise ValueError(
                f"weights violate the {spec.ratio} W-DBB bound; run "
                f"prune_weights_dbb first (static offline pruning)"
            )

    def _run_wdbb(self, a: np.ndarray, w: np.ndarray,
                  w_dense: bool = False) -> SystolicResult:
        cfg = self.config
        spec = cfg.w_spec
        m, k = a.shape
        n = w.shape[1]
        bz = spec.block_size
        k_blocks = math.ceil(k / bz)
        # Dense-weight fallback (Sec. 4): uncompressed blocks take
        # ceil(BZ/NNZ) passes through the NNZ-wide DP units.
        passes = math.ceil(bz / spec.max_nnz) if w_dense else 1
        if w_dense:
            # Uncompressed block, no positional mask.
            w_hop_block_bytes = w_sram_block_bytes = bz
        else:
            self._check_weights(w)
            w_hop_block_bytes = spec.max_nnz + int(spec.mask_bytes())
            w_sram_block_bytes = math.ceil(spec.compressed_block_bytes(1))
        tiles_m, tiles_n = self._tile_counts(m, n)
        tiles = tiles_m * tiles_n
        cycles = tiles * k_blocks * passes + self._skew()
        events = EventCounts(cycles=cycles)
        # MAC slots: NNZ per (output, block, pass); padded tiles gate.
        slots = (tiles * cfg.eff_rows * cfg.eff_cols
                 * k_blocks * passes * spec.max_nnz)
        # A MAC fires per (stored non-zero weight, non-zero activation at
        # the matching reduction index). Stored non-zeros of a compressed
        # compliant tensor are exactly the non-zeros of W (and the dense
        # fallback stores every element), so the triple loop over blocks
        # collapses to one dot product of per-index non-zero counts
        # (bit-identical with the per-block walk, see
        # repro.core.reference.naive_wdbb_fired).
        a_nz_cols = np.count_nonzero(a, axis=0).astype(np.int64)
        w_nz_rows = np.count_nonzero(w, axis=1).astype(np.int64)
        fired = int(a_nz_cols @ w_nz_rows)
        mux = n * k_blocks * passes * spec.max_nnz * m
        events.mac_ops = fired
        events.gated_mac_ops = slots - fired
        events.mux_ops = mux
        # Operand registers with intra-TPE reuse. The dot-product TPE
        # reuses activations less than the time-unrolled one (Sec. 6.1):
        # the dense 8-wide activation block broadcast to the DP4M8 muxes
        # recovers only half of the C-way reuse — mirroring the analytic
        # S2TA-W model.
        a_hops_bytes = tiles_n * cfg.cols * m * k  # dense activations
        w_hops_bytes = tiles_m * cfg.rows * n * k_blocks * w_hop_block_bytes
        events.operand_reg_ops = (a_hops_bytes // max(1, cfg.tpe_c // 2)
                                  + w_hops_bytes // cfg.tpe_a)
        # DP4M8: NNZ MACs reduce through an adder tree into one accumulator
        # update per (output, block pass), gated when no product fired.
        acc_slots = m * n * k_blocks * passes
        events.acc_reg_ops = min(acc_slots, fired)
        events.gated_acc_reg_ops = acc_slots - events.acc_reg_ops
        w_bytes_per_pass = n * k_blocks * w_sram_block_bytes
        self._add_sram_events(events, m, k, n,
                              a_bytes_per_pass=m * k,
                              w_bytes_per_pass=w_bytes_per_pass,
                              tiles_m=tiles_m, tiles_n=tiles_n)
        if w_dense:
            out = dense_gemm(a, w)
        else:
            # The weight compression memo is shared across the mode/density
            # sweep: every variant of a workload compresses the same W once.
            out = dbb_gemm(a, compress_cached(w.T, spec))
        return SystolicResult(output=out, cycles=cycles, events=events,
                              mode=cfg.mode)

    # ------------------------------------------------------------------ #
    # S2TA-AW: time-unrolled DP1M4 TPE array, both operands compressed
    # ------------------------------------------------------------------ #

    def _run_awdbb(self, a: np.ndarray, w: np.ndarray,
                   a_nnz: Optional[int],
                   w_dense: bool = False) -> SystolicResult:
        cfg = self.config
        w_spec = cfg.w_spec
        if not w_dense:
            self._check_weights(w)
        a_spec = cfg.a_spec
        nnz_a = a_spec.max_nnz if a_nnz is None else a_nnz
        if not 1 <= nnz_a <= a_spec.block_size:
            raise ValueError(
                f"a_nnz must be in [1, {a_spec.block_size}], got {nnz_a}"
            )
        m, k = a.shape
        n = w.shape[1]
        bz = a_spec.block_size
        k_blocks = math.ceil(k / bz)
        # DAP at the activation-buffer write port (dense bypass when the
        # layer is tuned to full density).
        if nnz_a < bz:
            a_pruned = dap_prune(a, a_spec, nnz=nnz_a).pruned
        else:
            a_pruned = a
        tiles_m, tiles_n = self._tile_counts(m, n)
        tiles = tiles_m * tiles_n
        steps_per_block = nnz_a if nnz_a < bz else bz
        cycles = (tiles * k_blocks + self._skew()) * steps_per_block
        events = EventCounts(cycles=cycles)
        # Every DP1M4 issues one MAC slot per cycle of every block.
        slots = tiles * cfg.eff_rows * cfg.eff_cols * k_blocks * steps_per_block
        # Fired when the weight bitmask matches the streamed activation:
        # summing popcount(a_mask & w_mask) over every (row, col, block)
        # triple. Bitmask bit i of block b is exactly "element b*BZ+i is
        # non-zero", so the triple sum separates per reduction index into
        # one dot product of non-zero counts — no compression needed and
        # bit-identical with the per-block mask walk (see
        # repro.core.reference.naive_awdbb_fired). The dense bypass
        # (nnz_a == BZ) reduces to the same formula.
        a_nz_cols = np.count_nonzero(a_pruned, axis=0).astype(np.int64)
        w_nz_rows = np.count_nonzero(w, axis=1).astype(np.int64)
        fired = int(a_nz_cols @ w_nz_rows)
        events.mac_ops = fired
        events.gated_mac_ops = slots - fired
        events.mux_ops = m * n * k_blocks * steps_per_block
        # Compressed operand hops with intra-TPE reuse. Dense bypass /
        # fallback streams uncompressed blocks with no positional mask.
        if steps_per_block < bz:
            a_block_bytes = steps_per_block + int(a_spec.mask_bytes())
        else:
            a_block_bytes = bz
        if w_dense:
            w_block_bytes = bz
        else:
            w_block_bytes = w_spec.max_nnz + int(w_spec.mask_bytes())
        a_hops_bytes = tiles_n * cfg.cols * m * k_blocks * a_block_bytes
        w_hops_bytes = tiles_m * cfg.rows * n * k_blocks * w_block_bytes
        # The serialized activation element broadcasts across the TPE's C
        # weight columns; beyond the DP1M4 mux width the broadcast needs
        # repeater stages, capping the free reuse at the mux width
        # (mirroring the analytic S2TA-AW model).
        a_reuse = max(1, min(cfg.tpe_c, w_spec.max_nnz))
        events.operand_reg_ops = (
            a_hops_bytes // a_reuse + w_hops_bytes // cfg.tpe_a
        )
        # DP1M4: one accumulator RMW per streamed cycle, gated on miss.
        acc_slots = m * n * k_blocks * steps_per_block
        events.acc_reg_ops = min(acc_slots, fired)
        events.gated_acc_reg_ops = acc_slots - events.acc_reg_ops
        # DAP array cost: once per unique activation block written to AB.
        if nnz_a < bz:
            unique_blocks = m * k_blocks
            events.dap_compare_ops = unique_blocks * (bz - 1) * nnz_a
        a_bytes_per_pass = m * k_blocks * a_block_bytes
        w_bytes_per_pass = n * k_blocks * w_block_bytes
        self._add_sram_events(events, m, k, n,
                              a_bytes_per_pass=a_bytes_per_pass,
                              w_bytes_per_pass=w_bytes_per_pass,
                              tiles_m=tiles_m, tiles_n=tiles_n,
                              # Activations land in the AB through the DAP
                              # write port in compressed block form.
                              a_write_bytes=a_bytes_per_pass)
        out = dense_gemm(a_pruned, w)
        return SystolicResult(output=out, cycles=cycles, events=events,
                              mode=cfg.mode)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _add_sram_events(events: EventCounts, m: int, k: int, n: int,
                         a_bytes_per_pass: int, w_bytes_per_pass: int,
                         tiles_m: int, tiles_n: int,
                         a_write_bytes: Optional[int] = None) -> None:
        """Output-stationary SRAM traffic: operands re-read per tile pass,
        results written once (``a_write_bytes`` overrides the dense INT8
        default for compressed activation-buffer write ports), one MCU
        post-op per output element."""
        events.sram_a_read_bytes += a_bytes_per_pass * tiles_n
        events.sram_w_read_bytes += w_bytes_per_pass * tiles_m
        events.sram_a_write_bytes += (m * n if a_write_bytes is None
                                      else a_write_bytes)
        events.mcu_elementwise_ops += m * n
