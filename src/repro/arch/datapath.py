"""The Fig. 6 datapath family.

Each function computes one block-level partial sum *functionally* (bit
exact with the dense dot product of the expanded operands) and returns
the hardware events it would cost:

- :func:`dp8_dense` — Fig. 6a/b: dense 8-MAC dot product, optionally with
  zero-value clock gating (ZVCG).
- :func:`dp4m8_block` — Fig. 6c: 4/8 W-DBB, 4 MACs + an 8:1 activation
  steering mux per MAC. Dense activations.
- :func:`dp4m4_block` — Fig. 6d: fixed joint A/W-DBB, 4 MACs + 4:1 muxes;
  bitmask intersection gates mismatch slots.
- :func:`dp1m4_block` — Fig. 6e: the time-unrolled variable A-DBB
  datapath — one MAC + 4:1 weight mux; activation non-zeros stream one
  per cycle, so a block takes ``a_nnz`` cycles regardless of density.

All return ``(psum, EventCounts)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.arch.events import EventCounts
from repro.core.dbb import DBBBlock

__all__ = ["dp8_dense", "dp4m8_block", "dp4m4_block", "dp1m4_block"]


def dp8_dense(
    a_block: np.ndarray, w_block: np.ndarray, zvcg: bool = False
) -> Tuple[int, EventCounts]:
    """Dense vector dot product (DP8), optionally with ZVCG (Fig. 6a/b).

    All ``BZ`` MAC slots issue every block; with ZVCG, slots where either
    operand is zero are clock-gated (power saved, no speedup — the slot is
    still occupied, which is exactly why ZVCG gives no throughput gain).
    """
    a_block = np.asarray(a_block, dtype=np.int64)
    w_block = np.asarray(w_block, dtype=np.int64)
    if a_block.shape != w_block.shape or a_block.ndim != 1:
        raise ValueError(
            f"operand blocks must be equal-length vectors, got "
            f"{a_block.shape} and {w_block.shape}"
        )
    events = EventCounts()
    useful = (a_block != 0) & (w_block != 0)
    fired = int(np.count_nonzero(useful)) if zvcg else a_block.size
    events.mac_ops += fired
    events.gated_mac_ops += a_block.size - fired
    psum = int(np.dot(a_block, w_block))
    return psum, events


def dp4m8_block(
    a_block: np.ndarray, w_block: DBBBlock, zvcg: bool = True
) -> Tuple[int, EventCounts]:
    """W-DBB dot product (DP4M8, Fig. 6c).

    ``NNZ`` hardware MACs process a whole ``BZ`` block per cycle; each MAC
    is fed the matching activation through an ``BZ``:1 mux steered by the
    weight bitmask. Underfull blocks (stored zeros) and zero activations
    are clock-gated when ``zvcg``.
    """
    a_block = np.asarray(a_block, dtype=np.int64)
    spec = w_block.spec
    if a_block.shape != (spec.block_size,):
        raise ValueError(
            f"activation block must have shape ({spec.block_size},), "
            f"got {a_block.shape}"
        )
    events = EventCounts()
    psum = 0
    slots = spec.max_nnz
    pairs = w_block.nonzero_pairs()
    events.mux_ops += slots
    fired = 0
    for pos, w_val in pairs:
        a_val = int(a_block[pos])
        if w_val != 0 and (a_val != 0 or not zvcg):
            psum += a_val * int(w_val)
            fired += 1
    events.mac_ops += fired if zvcg else slots
    events.gated_mac_ops += slots - (fired if zvcg else slots)
    return psum, events


def dp4m4_block(
    a_block: DBBBlock, w_block: DBBBlock
) -> Tuple[int, EventCounts]:
    """Fixed joint A/W-DBB dot product (DP4M4, Fig. 6d).

    Both operands arrive compressed; the bitmasks are intersected to find
    matching positions. All ``NNZ`` MAC slots issue each block (fixed
    spatial unrolling — this is the design whose utilization collapses
    under variable density, motivating time-unrolling); mismatches are
    clock-gated.
    """
    spec = w_block.spec
    if a_block.spec.block_size != spec.block_size:
        raise ValueError("operand block sizes differ")
    events = EventCounts()
    events.mux_ops += spec.max_nnz
    a_vals = dict(a_block.nonzero_pairs())
    psum = 0
    fired = 0
    for pos, w_val in w_block.nonzero_pairs():
        if w_val != 0 and pos in a_vals and a_vals[pos] != 0:
            psum += int(a_vals[pos]) * int(w_val)
            fired += 1
    events.mac_ops += fired
    events.gated_mac_ops += spec.max_nnz - fired
    return psum, events


def dp1m4_block(
    a_block: DBBBlock, w_block: DBBBlock
) -> Tuple[int, EventCounts]:
    """Time-unrolled variable A-DBB datapath (DP1M4, Fig. 6e).

    The single MAC consumes one *stored* activation element per cycle, so
    the block costs exactly ``a_spec.max_nnz`` cycles — the serialization
    that makes per-layer density a pure cycle-count knob (Sec. 5.2). Each
    cycle the weight bitmask is checked at the activation's expanded
    position: on a match the ``NNZ_w``:1 mux steers the stored weight into
    the MAC; otherwise the MAC is clock-gated (the product would be zero).
    """
    spec = w_block.spec
    if a_block.spec.block_size != spec.block_size:
        raise ValueError("operand block sizes differ")
    events = EventCounts()
    cycles = a_block.spec.max_nnz  # stored slots stream, full or not
    events.cycles += cycles
    psum = 0
    fired = 0
    w_vals = dict(w_block.nonzero_pairs())
    for pos, a_val in a_block.nonzero_pairs():
        events.mux_ops += 1
        w_val = w_vals.get(pos)
        if w_val is not None and w_val != 0 and a_val != 0:
            psum += int(a_val) * int(w_val)
            fired += 1
    events.mac_ops += fired
    events.gated_mac_ops += cycles - fired
    return psum, events
