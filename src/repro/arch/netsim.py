"""Whole-network cycle-level simulation.

Drives a quantized model (:class:`repro.nn.quantized.QuantizedSequential`)
through the systolic-array simulator one GEMM at a time: each layer's
INT8 operands execute on the configured array (DBB modes included),
psums requantize through the integer pipeline, and the per-layer cycle
counts and hardware events accumulate. The simulated network output is
**bit-exact** with the pure integer execution path — asserted in the
tests — because the array computes the same INT32 accumulations.

Layers whose weights do not satisfy the configured W-DBB bound (e.g.
the excluded first conv) automatically fall back to ZVCG execution,
mirroring the hardware's dense-fallback mode (Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.arch.events import EventCounts
from repro.arch.systolic import Mode, SystolicArray, SystolicConfig, SystolicResult
from repro.core.dap import dap_prune
from repro.nn.layers import AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.quantized import QuantizedSequential
from repro.quant.int8 import requantize

__all__ = ["LayerSimRecord", "NetworkSimResult", "simulate_network"]


@dataclass
class LayerSimRecord:
    """One GEMM layer's simulated execution."""

    name: str
    mode: Mode
    result: SystolicResult

    @property
    def cycles(self) -> int:
        return self.result.cycles


@dataclass
class NetworkSimResult:
    """Full-network simulation outcome."""

    output: np.ndarray
    records: List[LayerSimRecord] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.records)

    @property
    def total_events(self) -> EventCounts:
        total = EventCounts()
        for record in self.records:
            total += record.result.events
        return total

    def record(self, name: str) -> LayerSimRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no simulated layer {name!r}")


def _layer_mode(config: SystolicConfig, qlayer, first: bool) -> Mode:
    """Choose the execution mode for one layer under a DBB config."""
    if config.mode in (Mode.DENSE, Mode.ZVCG):
        return config.mode
    compliant = qlayer.weights_compliant(config.w_spec)
    if not compliant or first:
        return Mode.ZVCG  # hardware dense fallback (+ ZVCG gating)
    return config.mode


def simulate_network(
    qmodel: QuantizedSequential,
    x: np.ndarray,
    config: SystolicConfig,
    a_nnz: Optional[Dict[str, int]] = None,
) -> NetworkSimResult:
    """Simulate every GEMM layer of a quantized model on one array.

    ``a_nnz`` optionally overrides the per-layer activation DBB bound in
    ``AWDBB`` mode (dense bypass with ``8``). Non-GEMM layers (ReLU,
    pooling, flatten) execute functionally — they run on the MCU
    cluster, whose cost the energy model charges per cycle.
    """
    a_nnz = a_nnz or {}
    records: List[LayerSimRecord] = []
    from repro.quant.int8 import quantize

    q = quantize(x, qmodel.input_params)
    first_gemm = True
    for layer in qmodel._float_model.layers:
        if isinstance(layer, (Conv2d, Linear)):
            qlayer = qmodel.gemm_layers[layer.name]
            mode = _layer_mode(config, qlayer, first_gemm)
            sim = SystolicArray(SystolicConfig(
                rows=config.rows, cols=config.cols, mode=mode,
                w_spec=config.w_spec, a_spec=config.a_spec,
                tpe_a=config.tpe_a if mode in (Mode.WDBB, Mode.AWDBB) else 1,
                tpe_c=config.tpe_c if mode in (Mode.WDBB, Mode.AWDBB) else 1,
            ))
            if isinstance(layer, Linear):
                a_matrix = q.astype(np.int64)
                reshape = None
            else:
                n = q.shape[0]
                a_matrix, oh, ow = layer.lower(q.astype(np.int64))
                reshape = (n, oh, ow, layer.out_channels)
            kwargs = {}
            if mode is Mode.AWDBB:
                kwargs["a_nnz"] = a_nnz.get(layer.name,
                                            config.a_spec.max_nnz)
            result = sim.run_gemm(a_matrix,
                                  qlayer.weights_q.astype(np.int64),
                                  **kwargs)
            acc = result.output
            if qlayer.bias_q is not None:
                acc = acc + qlayer.bias_q
            q = requantize(acc, qlayer.multiplier, qlayer.shift)
            if reshape is not None:
                q = q.reshape(reshape)
            records.append(LayerSimRecord(name=layer.name, mode=mode,
                                          result=result))
            first_gemm = False
        elif isinstance(layer, ReLU):
            q = np.maximum(q, 0)
        elif isinstance(layer, MaxPool2d):
            q = layer.forward(q)
        elif isinstance(layer, AvgPool2d):
            q = np.rint(layer.forward(q.astype(np.float64))).astype(q.dtype)
        elif isinstance(layer, Flatten):
            q = layer.forward(q)
        else:
            raise NotImplementedError(
                f"cannot simulate layer type {type(layer).__name__}"
            )
    final_gemm = qmodel._float_model.gemm_layers[-1]
    out_params = qmodel._act_params[final_gemm.name]
    output = (q.astype(np.float64) - out_params.zero_point) * out_params.scale
    return NetworkSimResult(output=output, records=records)
