"""Memory-hierarchy model: DRAM channel + double-buffered SRAM staging.

The paper's energy and cycle headlines depend on off-chip traffic as
much as on MAC activity; this module is the memory side of the PPA
models. It replaces the old flat DMA cap (``ceil(stream_bytes / 32)``,
applied only to FC/depthwise layers) with a first-class hierarchy:

- :class:`DRAMConfig` — one DRAM channel: sustained bandwidth in bytes
  per accelerator cycle, minimum burst granule, and row-buffer-aware
  accounting (row span + optional activate stall per row crossing).
- :class:`SRAMStaging` — the software-managed on-chip staging buffers
  (512 KB weight buffer + 2 MB activation buffer on S2TA, Sec. 6.3),
  double-buffered: one half computes while the other fills, so only
  half of each buffer is usable for residency.
- :class:`MemorySystem` — prices one layer: residency against the
  staging buffers decides re-stream multiplicities, per-operand-class
  DRAM bytes are counted exactly (weights, activations, partial sums,
  DBB metadata), and a vectorized tile-schedule walker turns the
  layer's tiling into a per-tile DMA timeline overlapped with compute.

Two cycle numbers come out of a :class:`LayerMemoryProfile`:

- ``memory_cycles`` — the steady-state fill-bandwidth bound:
  ``ceil(operand-fill bus time)``. This is the roofline cap the
  accelerator models compare against compute cycles
  (``cycles = max(compute, memory)``); result write-back is posted
  through the activation-buffer write port and overlaps, so it is
  *reported and priced* but not part of the cap — exactly the
  convention of the old DMA cap, which the default configuration
  reproduces as a special case (32 B/cycle, no row stalls).
- ``overlapped_cycles`` — the double-buffered tile timeline: the first
  tile's fill cannot overlap anything, after that tile ``t+1``'s DMA
  (next fill + posted write-back of ``t``) hides under tile ``t``'s
  compute. This is the finer-grained number the roofline artifact
  reports; it converges to ``max(compute, memory)`` plus the fill skew.

DRAM energy is priced per byte through :class:`repro.energy.costs`
(``dram_pj_per_byte``); it is reported as a separate off-chip component
next to — not folded into — the paper-calibrated on-chip totals (the
paper scopes its energy comparisons to the accelerator die).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.models.specs import LayerKind, LayerSpec
from repro.obs import trace as obs_trace

__all__ = [
    "DRAMConfig",
    "SRAMStaging",
    "OperandStream",
    "LayerTraffic",
    "LayerMemoryProfile",
    "MemorySystem",
    "window_duplication",
    "compressed_stream_traffic_from_events",
]


def window_duplication(layer: LayerSpec, streaming: bool = True) -> int:
    """Im2col duplication factor (KH*KW) between the compact feature map
    and the GEMM view, recovered from the largest square-kernel divisor
    of K — exact for the model zoo's 11x11, 7x7, 5x5, 3x3 and 1x1 conv
    layers.

    FC layers have no spatial window in either view (their K is a plain
    channel axis, even when it happens to divide by a square). With
    ``streaming=True`` (the DRAM-traffic view) only standard conv layers
    get the on-the-fly expansion: depthwise layers stream
    channel-serial, which defeats the im2col address generators — their
    windows re-stream expanded (the Sec. 8.3 convention that makes
    depthwise layers DMA bound at batch 1). ``streaming=False`` is the
    on-chip *capacity* view (what the AB stores), where the compact
    footprint applies to conv *and* depthwise — used by the tiling
    analysis in :mod:`repro.accel.tiling`.

    Specs that state ``LayerSpec.window`` explicitly bypass the divisor
    inference — e.g. a 1x1 conv whose channel count happens to divide by
    9 would otherwise be mis-detected as a 3x3.
    """
    if layer.kind is LayerKind.FC:
        return 1
    if streaming and layer.kind is not LayerKind.CONV:
        return 1
    if layer.window is not None:
        return layer.window
    for window in (121, 49, 25, 9):
        if layer.k % window == 0 and layer.k // window >= 1:
            return window
    return 1


def compressed_stream_traffic_from_events(
    layer: LayerSpec,
    events,
    *,
    group_cols: int,
    pass_cap: int,
    coordinate_meta: bool = False,
) -> "LayerTraffic":
    """:class:`LayerTraffic` of the fixed-dataflow comparison points,
    derived from their *counted* SRAM traffic instead of the closed-form
    density estimate.

    The fixed-dataflow models (SCNN / SparTen / Eyeriss v2) count the
    stored bytes of their sparsity-compressed operands in
    ``EventCounts.sram_*_read_bytes`` — the analytic tier from the
    density closed forms, the functional tier from the actual non-zeros
    of the simulated operands. This derivation inverts those counters
    back into single-pass stored footprints (the activation counter
    carries ``passes`` refills; bitmask sideband is ``elements / 8``
    bytes, CSR-style coordinate sideband one byte per stored non-zero)
    and emits the DRAM streams from them. Because BOTH tiers route
    through this one function, bit-equal SRAM counters give bit-equal
    per-operand-class DRAM bytes — the same cross-validation mechanism
    the systolic family uses. The DRAM-side activation stream divides
    by the im2col window duplication (DRAM holds the compact feature
    map; the address generators expand it on the fly). Activations
    refill once per output-channel group (``n / group_cols`` passes,
    capped at ``pass_cap``); weights stream once. The refill pattern is
    baked into the published designs, so the traffic is marked
    ``fixed_schedule``.
    """
    dup = window_duplication(layer)
    passes = min(max(1, math.ceil(layer.n / group_cols)), pass_cap)
    a_stored = events.sram_a_read_bytes // passes
    w_stored = events.sram_w_read_bytes
    if coordinate_meta:
        # payload + one coordinate byte per stored non-zero
        a_payload = a_stored // 2
        w_payload = w_stored // 2
    else:
        a_payload = max(0, a_stored - layer.m * layer.k // 8)
        w_payload = max(0, w_stored - layer.k * layer.n // 8)
    a_nnz = max(1, round(a_payload / dup))
    w_nnz = max(1, w_payload)
    if coordinate_meta:
        a_meta, w_meta = a_nnz, w_nnz
    else:
        a_meta = max(1, layer.m * layer.k // dup // 8)
        w_meta = max(1, layer.k * layer.n // 8)
    return LayerTraffic(
        weights=OperandStream(w_nnz, w_meta, passes=1),
        acts=OperandStream(a_nnz, a_meta, passes=passes),
        out_bytes=layer.m * layer.n,
        tiles_m=1,
        tiles_n=passes,
        fixed_schedule=True,
    )


@dataclass(frozen=True)
class DRAMConfig:
    """One DRAM channel, clock-synchronous with the accelerator.

    ``bytes_per_cycle`` is the sustained bus bandwidth per *accelerator*
    cycle (the legacy DMA fill constant was 32 B/cycle); use
    :meth:`from_bandwidth` to spec an absolute bandwidth in GB/s at a
    given accelerator clock. ``burst_bytes`` is the minimum transfer
    granule (bus bytes round up per stream). ``row_bytes`` is the
    row-buffer span; every row crossing of a streamed transfer counts
    one activation, stalling ``row_activate_cycles`` (0 by default, so
    the default configuration degenerates to the legacy flat cap).

    ``cap_streaming_only`` selects the paper's evaluation semantics
    (the default): the fill-bandwidth *cap* is enforced only on the
    zero-reuse streams of Sec. 8.3 — FC weights and depthwise windows —
    while conv layers are assumed staged ahead of compute, exactly the
    assumption behind the paper's published conv speedups (and the old
    flat DMA cap this subsystem subsumes). Per-layer DRAM traffic and
    honest fill times are computed and reported for *every* layer
    regardless; set ``cap_streaming_only=False`` (what
    :meth:`from_bandwidth` does, i.e. any explicit ``--dram-bw`` spec)
    to enforce the roofline wall everywhere.
    """

    bytes_per_cycle: float = 32.0
    burst_bytes: int = 32
    row_bytes: int = 2048
    row_activate_cycles: float = 0.0
    cap_streaming_only: bool = True

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError(
                f"bytes_per_cycle must be positive, got {self.bytes_per_cycle}")
        if self.burst_bytes < 1 or self.row_bytes < 1:
            raise ValueError("burst_bytes and row_bytes must be >= 1")
        if self.row_activate_cycles < 0:
            raise ValueError("row_activate_cycles must be >= 0")

    @classmethod
    def from_bandwidth(cls, gb_per_s: float, clock_ghz: float = 1.0,
                       **kwargs) -> "DRAMConfig":
        """Channel with an absolute bandwidth at a given accelerator
        clock. An explicit bandwidth spec means the caller is sweeping
        the memory wall, so the cap defaults to honest roofline
        semantics on every layer (override via ``cap_streaming_only``).
        """
        if gb_per_s <= 0:
            raise ValueError(f"bandwidth must be positive, got {gb_per_s}")
        kwargs.setdefault("cap_streaming_only", False)
        return cls(bytes_per_cycle=gb_per_s / clock_ghz, **kwargs)

    def bandwidth_gbps(self, clock_ghz: float = 1.0) -> float:
        return self.bytes_per_cycle * clock_ghz

    def bus_bytes(self, logical_bytes: int, streams: int = 1) -> int:
        """Burst-rounded bus bytes for ``streams`` contiguous transfers."""
        if logical_bytes <= 0 or streams <= 0:
            return 0
        per_stream = -(-logical_bytes // streams)
        bursts = -(-per_stream // self.burst_bytes)
        return streams * bursts * self.burst_bytes

    def row_activations(self, logical_bytes: int, streams: int = 1) -> int:
        """Row-buffer activations for ``streams`` contiguous transfers."""
        if logical_bytes <= 0 or streams <= 0:
            return 0
        per_stream = -(-logical_bytes // streams)
        return streams * -(-per_stream // self.row_bytes)

    def transfer_cycles_array(self, logical_bytes: np.ndarray) -> np.ndarray:
        """Bus time per transfer, vectorized (one transfer per element):
        burst-rounded bytes plus row-activation stalls. The single
        source of the channel's per-transfer timing formula — the
        scalar :meth:`transfer_cycles` and the per-tile DMA timeline
        walker both route through it."""
        arr = np.asarray(logical_bytes, dtype=np.float64)
        bursts = np.ceil(arr / self.burst_bytes)
        rows = np.ceil(arr / self.row_bytes)
        return (bursts * self.burst_bytes / self.bytes_per_cycle
                + rows * self.row_activate_cycles)

    def transfer_cycles(self, logical_bytes: int, streams: int = 1) -> float:
        """Bus time of ``streams`` contiguous transfers of
        ``logical_bytes`` total (same per-stream split as
        :meth:`bus_bytes` / :meth:`row_activations`)."""
        if logical_bytes <= 0 or streams <= 0:
            return 0.0
        per_stream = -(-logical_bytes // streams)
        return streams * float(self.transfer_cycles_array(per_stream))


@dataclass(frozen=True)
class SRAMStaging:
    """Double-buffered on-chip staging (S2TA: 512 KB WB + 2 MB AB)."""

    wb_bytes: int = 512 * 1024
    ab_bytes: int = 2 * 1024 * 1024
    double_buffered: bool = True

    def __post_init__(self) -> None:
        if self.wb_bytes < 1 or self.ab_bytes < 1:
            raise ValueError("buffer capacities must be >= 1 byte")

    @property
    def usable_wb(self) -> int:
        """Weight-buffer bytes available for residency (half when
        double-buffered: one half computes while the other fills)."""
        return self.wb_bytes // 2 if self.double_buffered else self.wb_bytes

    @property
    def usable_ab(self) -> int:
        return self.ab_bytes // 2 if self.double_buffered else self.ab_bytes


@dataclass(frozen=True)
class OperandStream:
    """One operand class's single-pass DRAM stream.

    ``payload_bytes`` are the data bytes (compressed non-zeros for DBB
    operands), ``meta_bytes`` the sideband encoding (DBB positional
    masks, CSR/CSC indices, bitmasks). ``passes`` is the re-stream
    multiplicity the tiling imposes when the operand does *not* fit the
    staging buffer (resident operands stream once regardless).
    """

    payload_bytes: int
    meta_bytes: int = 0
    passes: int = 1

    def __post_init__(self) -> None:
        if self.payload_bytes < 0 or self.meta_bytes < 0:
            raise ValueError("stream byte counts must be >= 0")
        if self.passes < 1:
            raise ValueError(f"passes must be >= 1, got {self.passes}")

    @property
    def stored_bytes(self) -> int:
        """On-chip footprint of one pass (payload + metadata)."""
        return self.payload_bytes + self.meta_bytes


@dataclass(frozen=True)
class LayerTraffic:
    """What an accelerator hands the memory system for one layer.

    ``weights``/``acts`` are single-pass streams with their tiling
    re-stream multiplicities (output-stationary: weights re-stream per
    output-row tile pass, activations per output-column tile pass).
    ``out_bytes`` is the result write-back, ``k_strip_bytes`` the
    largest single-column-strip weight working set (decides whether the
    reduction must split along K and spill partial sums).

    ``fixed_schedule`` marks dataflows whose refill pattern is baked
    into the published design (SCNN / SparTen / Eyeriss v2): every
    non-resident operand applies its declared ``passes`` — consistent
    with those models' own SRAM counters. Leave it False for the
    software-scheduled systolic tiling, where the loop order is free
    and only a both-operands-overflow situation forces re-streaming.
    """

    weights: OperandStream
    acts: OperandStream
    out_bytes: int
    tiles_m: int = 1
    tiles_n: int = 1
    k_strip_bytes: int = 0
    fixed_schedule: bool = False

    def __post_init__(self) -> None:
        if self.out_bytes < 0:
            raise ValueError("out_bytes must be >= 0")
        if self.tiles_m < 1 or self.tiles_n < 1:
            raise ValueError("tile counts must be >= 1")


@dataclass
class LayerMemoryProfile:
    """Exact per-operand-class DRAM traffic and timing of one layer."""

    name: str
    # DRAM bytes per operand class (payload vs DBB/index metadata).
    weight_bytes: int
    weight_meta_bytes: int
    act_bytes: int
    act_meta_bytes: int
    out_bytes: int
    psum_read_bytes: int
    psum_write_bytes: int
    # Residency decisions and reduction splitting.
    weights_resident: bool
    acts_resident: bool
    k_splits: int
    # Channel-level accounting.
    bus_read_bytes: int
    bus_write_bytes: int
    row_activations: int
    # Timing.
    fill_cycles: float        # operand-fill bus time (reads), fractional
    dma_cycles: float         # total bus-busy time incl. write-back
    memory_cycles: int        # ceil(fill_cycles): the roofline cap
    compute_cycles: int
    # Lazy per-tile timeline: walking the tile schedule costs numpy work
    # per layer, and only the roofline artifact reads the result — so
    # the walker runs on first access, not inside every run_layer.
    _timeline: Optional[Callable[[], int]] = dataclasses.field(
        default=None, repr=False, compare=False)
    _overlapped: Optional[int] = dataclasses.field(
        default=None, repr=False, compare=False)

    @property
    def overlapped_cycles(self) -> int:
        """Double-buffered per-tile DMA timeline (computed on demand)."""
        if self._overlapped is None:
            self._overlapped = (self._timeline() if self._timeline
                                else max(self.compute_cycles,
                                         self.memory_cycles))
        return self._overlapped

    @property
    def dram_read_bytes(self) -> int:
        return (self.weight_bytes + self.weight_meta_bytes
                + self.act_bytes + self.act_meta_bytes
                + self.psum_read_bytes)

    @property
    def dram_write_bytes(self) -> int:
        return self.out_bytes + self.psum_write_bytes

    @property
    def total_dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def meta_bytes(self) -> int:
        """All DBB/index sideband traffic."""
        return self.weight_meta_bytes + self.act_meta_bytes

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles

    def intensity(self, ops: float) -> float:
        """Operational intensity: ops per DRAM byte (roofline x-axis)."""
        total = self.total_dram_bytes
        return ops / total if total else float("inf")

    def by_class(self) -> Dict[str, int]:
        """DRAM bytes per operand class (the Sec. 8.3 traffic split)."""
        return {
            "weights": self.weight_bytes,
            "activations": self.act_bytes,
            "partial_sums": self.psum_read_bytes + self.psum_write_bytes,
            "dbb_metadata": self.meta_bytes,
            "outputs": self.out_bytes,
        }


def _split_even(total: int, parts: int) -> np.ndarray:
    """Split ``total`` into ``parts`` integers that sum exactly."""
    base, rem = divmod(int(total), int(parts))
    out = np.full(parts, base, dtype=np.int64)
    out[:rem] += 1
    return out


def _tile_dma_bytes(
    traffic: LayerTraffic,
    w_total: int,
    a_total: int,
    psum_read: int,
    psum_write: int,
    weights_once: bool,
    acts_once: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-tile (read, write) DRAM bytes in schedule order, vectorized.

    The output-stationary schedule walks column-tile passes outermost
    (``j = 0..tiles_n-1``) with row tiles innermost. Single-stream
    weights fetch each column strip once at its first tile; single-
    stream activations fetch each row strip during the first pass;
    a re-streaming operand re-fetches at every tile that uses it.
    Result write-back drains per tile as outputs retire.
    """
    tm, tn = traffic.tiles_m, traffic.tiles_n
    tiles = tm * tn
    reads = np.zeros(tiles, dtype=np.float64)
    # Weight strips: strip j serves all row tiles of pass j.
    w_strips = _split_even(w_total, tn)
    if weights_once:
        # Fetched once, at tile (i=0, pass j) -> schedule index j * tm.
        reads[np.arange(tn) * tm] += w_strips
    else:
        # Every tile of pass j re-fetches its strip share.
        reads += np.repeat(w_strips / tm, tm)
    # Activation strips: strip i serves tile (i, j) in every pass.
    a_strips = _split_even(a_total, tn * tm).reshape(tn, tm)
    if acts_once:
        reads[:tm] += a_strips.sum(axis=0)  # all during the first pass
    else:
        reads += a_strips.reshape(-1)
    reads += _split_even(psum_read, tiles)
    writes = _split_even(traffic.out_bytes + psum_write, tiles).astype(
        np.float64)
    return reads, writes


def _overlapped_cycles(
    dram: DRAMConfig,
    reads: np.ndarray,
    writes: np.ndarray,
    compute_cycles: int,
) -> int:
    """Double-buffered tile timeline: fill 0, then DMA hides under compute.

    Tile ``t``'s compute overlaps the fill of ``t+1`` plus the posted
    write-back of ``t-1`` (a tile's own outputs cannot drain before its
    compute produces them); whichever side is longer paces the
    pipeline. The first fill and the last drain are exposed — the
    fill/drain skew the analytic models pipeline away between tiles of
    one layer but pay once per layer.
    """
    tiles = len(reads)
    per_tile_compute = compute_cycles / tiles
    # Per-tile bus time; burst rounding applies per tile transfer.
    fill = dram.transfer_cycles_array(reads)
    drain = dram.transfer_cycles_array(writes)
    during_compute = np.zeros(tiles, dtype=np.float64)
    during_compute[:-1] += fill[1:]
    during_compute[1:] += drain[:-1]
    total = (fill[0]
             + float(np.maximum(per_tile_compute, during_compute).sum())
             + float(drain[-1]))
    return int(math.ceil(total))


class MemorySystem:
    """Prices one layer's tiling against a DRAM channel + staging SRAM."""

    def __init__(self, dram: DRAMConfig = DRAMConfig(),
                 sram: SRAMStaging = SRAMStaging()):
        self.dram = dram
        self.sram = sram

    def profile(self, traffic: LayerTraffic, compute_cycles: int,
                name: str = "") -> LayerMemoryProfile:
        """Walk one layer's tile schedule into a DMA profile.

        Residency against the double-buffered staging capacities decides
        each operand's re-stream multiplicity; per-class DRAM bytes are
        exact; ``memory_cycles`` is the operand-fill bound and
        ``overlapped_cycles`` the per-tile double-buffered timeline.
        """
        with obs_trace.span(name or "memory-walk", "memory"):
            return self._profile_body(traffic, compute_cycles, name)

    def _profile_body(self, traffic: LayerTraffic, compute_cycles: int,
                      name: str) -> LayerMemoryProfile:
        w, a = traffic.weights, traffic.acts
        weights_resident = w.stored_bytes <= self.sram.usable_wb
        acts_resident = a.stored_bytes <= self.sram.usable_ab
        # Re-stream multiplicity. Fixed dataflows (SCNN/SparTen/Eyeriss)
        # refill every non-resident operand at its declared pass count —
        # matching their own SRAM accounting. The software-scheduled
        # systolic tiling is free to pick its loop order: as long as one
        # operand stays resident, the order that holds it fetches the
        # other exactly once (strips stream through the staging half);
        # only when both overflow must one side re-stream, and the
        # scheduler picks whichever loop order moves fewer bytes.
        w_streams = a_streams = 1
        if traffic.fixed_schedule:
            w_streams = 1 if weights_resident else w.passes
            a_streams = 1 if acts_resident else a.passes
        elif not weights_resident and not acts_resident:
            if (w.stored_bytes * w.passes + a.stored_bytes
                    <= a.stored_bytes * a.passes + w.stored_bytes):
                w_streams = w.passes
            else:
                a_streams = a.passes
        w_payload = w.payload_bytes * w_streams
        w_meta = w.meta_bytes * w_streams
        a_payload = a.payload_bytes * a_streams
        a_meta = a.meta_bytes * a_streams
        # Reduction splitting: when even one column strip's weights
        # exceed the usable WB, K splits and 32-bit partial sums spill
        # to DRAM and reload once per extra split.
        k_splits = 1
        if traffic.k_strip_bytes > self.sram.usable_wb:
            k_splits = -(-traffic.k_strip_bytes // self.sram.usable_wb)
        psum = (k_splits - 1) * 4 * traffic.out_bytes
        w_total = w_payload + w_meta
        a_total = a_payload + a_meta
        fill_cycles = (
            self.dram.transfer_cycles(w_total, w_streams)
            + self.dram.transfer_cycles(a_total, a_streams)
            + self.dram.transfer_cycles(psum, max(1, k_splits - 1))
        )
        drain_cycles = (
            self.dram.transfer_cycles(traffic.out_bytes)
            + self.dram.transfer_cycles(psum, max(1, k_splits - 1))
        )
        bus_read = (self.dram.bus_bytes(w_total, w_streams)
                    + self.dram.bus_bytes(a_total, a_streams)
                    + self.dram.bus_bytes(psum, max(1, k_splits - 1)))
        bus_write = (self.dram.bus_bytes(traffic.out_bytes)
                     + self.dram.bus_bytes(psum, max(1, k_splits - 1)))
        row_acts = (self.dram.row_activations(w_total, w_streams)
                    + self.dram.row_activations(a_total, a_streams)
                    + self.dram.row_activations(traffic.out_bytes)
                    + 2 * self.dram.row_activations(psum,
                                                    max(1, k_splits - 1)))

        def walk_timeline(dram=self.dram, w_once=w_streams == 1,
                          a_once=a_streams == 1) -> int:
            reads, writes = _tile_dma_bytes(
                traffic, w_total, a_total, psum, psum,
                weights_once=w_once, acts_once=a_once)
            return _overlapped_cycles(dram, reads, writes, compute_cycles)

        return LayerMemoryProfile(
            name=name,
            weight_bytes=w_payload,
            weight_meta_bytes=w_meta,
            act_bytes=a_payload,
            act_meta_bytes=a_meta,
            out_bytes=traffic.out_bytes,
            psum_read_bytes=psum,
            psum_write_bytes=psum,
            weights_resident=weights_resident,
            acts_resident=acts_resident,
            k_splits=k_splits,
            bus_read_bytes=bus_read,
            bus_write_bytes=bus_write,
            row_activations=row_acts,
            fill_cycles=fill_cycles,
            dma_cycles=fill_cycles + drain_cycles,
            memory_cycles=int(math.ceil(fill_cycles)),
            compute_cycles=int(compute_cycles),
            _timeline=walk_timeline,
        )
