"""Hardware event counters.

Every microarchitecture model in :mod:`repro.arch` produces an
:class:`EventCounts`; the energy model (:mod:`repro.energy`) converts
events into joules with per-event costs. Keeping events and costs separate
is what lets one functional simulation be re-priced across technology
nodes (16 nm vs 65 nm) and across calibrations.

Units: ``*_ops`` are operation counts, ``*_bytes`` are byte counts,
``cycles`` are clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["EventCounts"]


@dataclass
class EventCounts:
    """Counter bundle for one simulated execution."""

    # Datapath
    mac_ops: int = 0            # INT8 multiply-accumulates that fired
    gated_mac_ops: int = 0      # MAC slots clock-gated (zero operand / mask miss)
    mux_ops: int = 0            # DBB steering-mux selections (Fig. 6c/e)
    # PE-array buffers (the Fig. 1 "buffers" component)
    operand_reg_ops: int = 0    # 8-bit operand pipeline register read+write
    gated_operand_reg_ops: int = 0  # operand register events gated by ZVCG
    acc_reg_ops: int = 0        # 32-bit accumulator read-modify-write
    gated_acc_reg_ops: int = 0  # accumulator slots gated (no product)
    fifo_push_ops: int = 0      # SMT staging FIFO pushes
    fifo_pop_ops: int = 0       # SMT staging FIFO pops
    gather_ops: int = 0         # non-zero matching / operand gather steps
    scatter_acc_ops: int = 0    # outer-product distributed accumulator RMW
    # SRAM traffic
    sram_w_read_bytes: int = 0
    sram_a_read_bytes: int = 0
    sram_a_write_bytes: int = 0
    # Off-chip (DRAM) traffic, from the memory-hierarchy model
    # (:mod:`repro.arch.memory`): operand fills and result write-back.
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    # DAP array
    dap_compare_ops: int = 0    # magnitude comparators in the maxpool cascade
    # Non-GEMM work delegated to the MCU cluster (per output element)
    mcu_elementwise_ops: int = 0
    # Time
    cycles: int = 0

    def __add__(self, other: "EventCounts") -> "EventCounts":
        if not isinstance(other, EventCounts):
            return NotImplemented
        merged = {}
        for f in fields(self):
            merged[f.name] = getattr(self, f.name) + getattr(other, f.name)
        return EventCounts(**merged)

    def __iadd__(self, other: "EventCounts") -> "EventCounts":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "EventCounts":
        """Scale every counter (used to extrapolate a sampled tile)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        scaled = {}
        for f in fields(self):
            scaled[f.name] = int(round(getattr(self, f.name) * factor))
        return EventCounts(**scaled)

    @property
    def total_mac_slots(self) -> int:
        """Fired plus gated MAC issue slots (utilization denominator)."""
        return self.mac_ops + self.gated_mac_ops

    @property
    def mac_utilization(self) -> float:
        """Fraction of issued MAC slots that did useful work."""
        total = self.total_mac_slots
        return self.mac_ops / total if total else 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}
