"""Buffer models: SRAM, register file, FIFO — with access accounting.

These model the *cost-bearing* behaviour of on-chip storage (Sec. 2's
point is that buffers, not MACs, dominate INT8 accelerator energy). The
functional content is ordinary Python; what matters is that every access
is counted so the energy model can price it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

__all__ = ["Sram", "RegisterFile", "FIFO", "FifoFullError"]


class Sram:
    """A byte-addressed software-managed SRAM with read/write counters.

    S2TA uses grouped (not distributed) SRAM: a 0.5 MB weight buffer and a
    2 MB activation buffer, both double buffered (Sec. 6.3). Double
    buffering affects area (modelled in :mod:`repro.energy`), not the
    access counts tallied here.
    """

    def __init__(self, size_bytes: int, name: str = "sram"):
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        self.size_bytes = size_bytes
        self.name = name
        self.data = np.zeros(size_bytes, dtype=np.int8)
        self.read_bytes = 0
        self.write_bytes = 0

    def write(self, address: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int8).reshape(-1)
        self._check_range(address, values.size)
        self.data[address:address + values.size] = values
        self.write_bytes += values.size

    def read(self, address: int, length: int) -> np.ndarray:
        self._check_range(address, length)
        self.read_bytes += length
        return self.data[address:address + length].copy()

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size_bytes:
            raise IndexError(
                f"{self.name}: access [{address}, {address + length}) "
                f"outside size {self.size_bytes}"
            )

    def reset_counters(self) -> None:
        self.read_bytes = 0
        self.write_bytes = 0


class RegisterFile:
    """A small operand register file with per-access counting.

    Models the pipeline operand registers inside each PE: every systolic
    hop is one write + one read of an 8-bit register.
    """

    def __init__(self, entries: int, name: str = "regfile"):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        self.entries = entries
        self.name = name
        self.data = np.zeros(entries, dtype=np.int64)
        self.read_ops = 0
        self.write_ops = 0

    def write(self, index: int, value: int) -> None:
        self._check(index)
        self.data[index] = value
        self.write_ops += 1

    def read(self, index: int) -> int:
        self._check(index)
        self.read_ops += 1
        return int(self.data[index])

    def _check(self, index: int) -> None:
        if not 0 <= index < self.entries:
            raise IndexError(f"{self.name}: register {index} of {self.entries}")


class FifoFullError(Exception):
    """Raised on push into a full FIFO (the SMT model treats it as a stall)."""


class FIFO:
    """A bounded FIFO with push/pop counters (the SMT staging buffer).

    SA-SMT's operand staging FIFOs are the overhead structure quantified
    in Sec. 2.2; depth 2 (T2Q2) or 4 (T2Q4) per the paper's variants.
    """

    def __init__(self, depth: int, name: str = "fifo"):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.depth = depth
        self.name = name
        self._items: Deque = deque()
        self.push_ops = 0
        self.pop_ops = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item) -> None:
        if self.full:
            raise FifoFullError(f"{self.name}: push into full FIFO (depth {self.depth})")
        self._items.append(item)
        self.push_ops += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))

    def pop(self):
        if self.empty:
            raise IndexError(f"{self.name}: pop from empty FIFO")
        self.pop_ops += 1
        return self._items.popleft()

    def try_push(self, item) -> bool:
        """Push unless full; returns whether the push happened."""
        if self.full:
            return False
        self.push(item)
        return True
