"""The Tensor PE (Fig. 7b/c) as an explicit composable unit.

A TPE accepts a pair of operand *blocks* per exchange — ``A`` activation
blocks and ``C`` weight blocks — and computes their ``A x C`` outer
product of block-dot-products on a grid of DP units. The time-unrolled
variant (Fig. 7c) wires DP1M4 datapaths; the dot-product variant wires
DP4M8. The degenerate 1x1 TPE with a single dense lane is the classic
scalar PE (Fig. 7b).

The systolic simulator uses equivalent closed-form event math for
speed; this module is the unit-level ground truth it is validated
against in the tests (same psums, cycles and MAC events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.arch.datapath import dp1m4_block, dp4m8_block
from repro.arch.events import EventCounts
from repro.core.dbb import DBBBlock

__all__ = ["TensorPE", "TPEStepResult"]


@dataclass
class TPEStepResult:
    """One operand exchange: the A x C psum tile and its events."""

    psums: np.ndarray  # (A, C) int64 partial sums
    cycles: int
    events: EventCounts


class TensorPE:
    """An ``A x B x C`` tensor PE.

    Parameters
    ----------
    tpe_a, tpe_c:
        Outer-product dims (activation blocks x weight blocks).
    time_unrolled:
        DP1M4 lanes (serialize activation non-zeros) when True, DP4M8
        dot-product lanes (dense activation blocks) when False.
    """

    def __init__(self, tpe_a: int, tpe_c: int, time_unrolled: bool = True):
        if tpe_a < 1 or tpe_c < 1:
            raise ValueError("TPE dims must be >= 1")
        self.tpe_a = tpe_a
        self.tpe_c = tpe_c
        self.time_unrolled = time_unrolled

    @property
    def dp_units(self) -> int:
        return self.tpe_a * self.tpe_c

    @property
    def macs(self) -> int:
        return self.dp_units * (1 if self.time_unrolled else 4)

    def step(self, a_blocks: Sequence, w_blocks: Sequence[DBBBlock]
             ) -> TPEStepResult:
        """Process one block exchange.

        ``a_blocks`` holds ``A`` activation blocks — :class:`DBBBlock`
        for the time-unrolled TPE, dense arrays for the dot-product TPE.
        ``w_blocks`` holds ``C`` compressed weight blocks. All DP units
        run in lockstep; the step takes as many cycles as the slowest
        lane (they are uniform by construction: ``a_nnz`` cycles
        time-unrolled, 1 cycle dot-product).
        """
        if len(a_blocks) != self.tpe_a:
            raise ValueError(
                f"expected {self.tpe_a} activation blocks, got {len(a_blocks)}"
            )
        if len(w_blocks) != self.tpe_c:
            raise ValueError(
                f"expected {self.tpe_c} weight blocks, got {len(w_blocks)}"
            )
        psums = np.zeros((self.tpe_a, self.tpe_c), dtype=np.int64)
        events = EventCounts()
        lane_cycles: List[int] = []
        for i, a_block in enumerate(a_blocks):
            for j, w_block in enumerate(w_blocks):
                if self.time_unrolled:
                    psum, lane_events = dp1m4_block(a_block, w_block)
                    lane_cycles.append(lane_events.cycles)
                    lane_events.cycles = 0  # lanes run in parallel
                else:
                    psum, lane_events = dp4m8_block(
                        np.asarray(a_block), w_block)
                    lane_cycles.append(1)
                psums[i, j] = psum
                events += lane_events
        cycles = max(lane_cycles)
        events.cycles = cycles
        # every DP unit updates its private accumulator each lane cycle
        events.acc_reg_ops += self.dp_units * cycles
        return TPEStepResult(psums=psums, cycles=cycles, events=events)

    def __repr__(self) -> str:
        style = "time-unrolled" if self.time_unrolled else "dot-product"
        return f"TensorPE({self.tpe_a}x{self.tpe_c}, {style})"
