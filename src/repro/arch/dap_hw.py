"""Hardware DAP array: cascaded magnitude maxpools (Fig. 8).

The DAP array turns a dense ``BZ``-element activation block into a
DBB-compliant one at line rate: ``NNZ`` cascaded *magnitude maxpool*
stages each select the largest-|x| element not chosen by an earlier
stage, using ``BZ - 1`` binary comparators per stage. The cumulative
positional bitmask after stage *k* is the Top-k mask.

The cascade is capped at 5 stages in the paper's design (Sec. 6.2);
layers tuned above 5/8 bypass DAP entirely and run dense.

This model is bit-exact with the algorithmic DAP
(:func:`repro.core.dap.dap_prune`): a comparator tree with strict
``>`` comparisons and left-operand priority selects the lowest index
among equal magnitudes, the same tie-break as the software Top-NNZ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.arch.events import EventCounts
from repro.core.dap import DAP_MAX_HARDWARE_NNZ
from repro.core.dbb import DBBBlock, DBBSpec, blocked_rows, positions_to_mask

__all__ = ["DAPHardware", "DAPStageTrace"]


@dataclass
class DAPStageTrace:
    """One maxpool stage's outcome: selected position and cumulative mask."""

    stage: int
    selected_position: int
    cumulative_mask: int


class DAPHardware:
    """The cascaded magnitude-maxpool DAP array.

    Parameters
    ----------
    block_size:
        ``BZ``; the paper's design fixes 8.
    max_stages:
        Number of maxpool stages physically built (paper: 5). Requests for
        larger NNZ must bypass (checked at :meth:`prune_block`).
    """

    def __init__(self, block_size: int = 8,
                 max_stages: int = DAP_MAX_HARDWARE_NNZ):
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        if not 1 <= max_stages < block_size:
            raise ValueError(
                f"max_stages must be in [1, BZ-1], got {max_stages}"
            )
        self.block_size = block_size
        self.max_stages = max_stages

    def _maxpool(self, magnitudes: np.ndarray, excluded: np.ndarray) -> int:
        """One magnitude maxpool: index of the largest non-excluded |x|.

        Implemented as the comparator chain the hardware uses: a running
        winner compared against each candidate with strict ``>``, so the
        earliest (lowest) index wins ties.
        """
        winner = -1
        winner_mag = -1
        for idx in range(self.block_size):
            if excluded[idx]:
                continue
            if int(magnitudes[idx]) > winner_mag:
                winner = idx
                winner_mag = int(magnitudes[idx])
        return winner

    def prune_block(
        self, block: np.ndarray, nnz: int
    ) -> Tuple[DBBBlock, List[DAPStageTrace], EventCounts]:
        """Run the cascade on one dense block.

        Returns the compressed :class:`DBBBlock`, the per-stage trace
        (for waveform-style inspection), and the comparator event counts.

        Raises
        ------
        ValueError
            If ``nnz`` exceeds the built stages — such layers must bypass
            DAP (handled a level up by the accelerator model).
        """
        block = np.asarray(block)
        if block.shape != (self.block_size,):
            raise ValueError(
                f"block must have shape ({self.block_size},), got {block.shape}"
            )
        if not 1 <= nnz <= self.max_stages:
            raise ValueError(
                f"nnz={nnz} outside hardware range [1, {self.max_stages}]; "
                f"denser layers bypass DAP"
            )
        magnitudes = np.abs(block.astype(np.int64))
        excluded = np.zeros(self.block_size, dtype=bool)
        events = EventCounts()
        traces: List[DAPStageTrace] = []
        selected: List[int] = []
        for stage in range(nnz):
            # each stage burns BZ-1 binary comparisons regardless of data
            events.dap_compare_ops += self.block_size - 1
            winner = self._maxpool(magnitudes, excluded)
            if winner >= 0 and magnitudes[winner] > 0:
                excluded[winner] = True
                selected.append(winner)
            traces.append(
                DAPStageTrace(
                    stage=stage,
                    selected_position=winner,
                    cumulative_mask=positions_to_mask(sorted(selected),
                                                      self.block_size),
                )
            )
        spec = DBBSpec(self.block_size, nnz)
        positions = sorted(selected)
        values = [block[p] for p in positions]
        values += [block.dtype.type(0)] * (nnz - len(values))
        mask = positions_to_mask(positions, self.block_size)
        return DBBBlock(spec=spec, values=tuple(values), mask=mask), traces, events

    def prune_tensor(
        self, activations: np.ndarray, nnz: int
    ) -> Tuple[np.ndarray, EventCounts]:
        """Run the cascade over every block of a tensor (last axis blocked).

        Returns the dense-layout pruned tensor and total comparator events;
        bit-exact with :func:`repro.core.dap.dap_prune`.

        Vectorized: the cascade's stage-by-stage winner selection (strict
        ``>`` with left-operand priority) is exactly Top-``nnz`` by
        magnitude with lowest-index tie-breaking, so the whole tensor runs
        through the shared :func:`~repro.core.pruning.topk_block_mask`
        kernel in one pass; :meth:`prune_block` remains the per-block
        ground truth (agreement is property-tested). Comparator events are
        data-independent — every stage burns ``BZ - 1`` comparisons — so
        they are charged in closed form.
        """
        if not 1 <= nnz <= self.max_stages:
            raise ValueError(
                f"nnz={nnz} outside hardware range [1, {self.max_stages}]; "
                f"denser layers bypass DAP"
            )
        activations = np.asarray(activations)
        original_shape = activations.shape
        blocks, work_shape, last = blocked_rows(activations, self.block_size)
        from repro.core.pruning import topk_block_mask

        keep = topk_block_mask(blocks, nnz)
        out = np.where(keep, blocks, np.zeros_like(blocks))
        events = EventCounts()
        events.dap_compare_ops = blocks.shape[0] * (self.block_size - 1) * nnz
        pruned = out.reshape(work_shape)[:, :last].reshape(original_shape)
        return pruned.astype(activations.dtype), events
