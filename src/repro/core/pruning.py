"""Static weight DBB pruning (paper Sec. 4 and 8.1, "Training for W-DBB").

Weights are pruned *per block*: within every ``BZ`` block along the channel
axis, only the ``NNZ`` largest-magnitude elements are kept. The paper runs
this progressively over 20–50 epochs ("progressively pruning small-magnitude
weights within each DBB block"); :class:`PruningSchedule` models the ramp.

Tie-breaking matches the hardware DAP comparator cascade
(:mod:`repro.arch.dap_hw`): among equal magnitudes the lowest expanded
position wins, so software pruning and hardware selection agree bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dbb import DBBSpec

__all__ = [
    "topk_block_mask",
    "prune_blocks",
    "prune_weights_dbb",
    "is_dbb_compliant",
    "PruningSchedule",
]


def topk_block_mask(blocks: np.ndarray, keep: int) -> np.ndarray:
    """Boolean keep-mask of the ``keep`` largest-magnitude entries per row.

    ``blocks`` has shape ``(n_blocks, BZ)``. Zeros never count as kept
    unless a block has fewer than ``keep`` non-zeros, in which case all of
    its non-zeros are kept and the mask has fewer than ``keep`` bits set.
    Ties break toward the lowest index (stable sort), matching hardware.
    """
    blocks = np.asarray(blocks)
    if blocks.ndim != 2:
        raise ValueError(f"expected (n_blocks, BZ), got shape {blocks.shape}")
    n, bz = blocks.shape
    if not 0 <= keep <= bz:
        raise ValueError(f"keep must be in [0, BZ={bz}], got {keep}")
    if keep == 0:
        return np.zeros((n, bz), dtype=bool)
    if keep >= bz:
        return np.asarray(blocks != 0)
    # Integer inputs select on a widened integer magnitude (abs(-128)
    # overflows int8); floats go through float64 as before. Selection is
    # threshold-based rather than a stable argsort on -magnitude, but
    # implements the identical ordering: everything strictly above the
    # keep-th largest magnitude is kept, and ties *at* the threshold
    # fill the remaining quota lowest-index-first (exactly what a
    # stable descending sort yields — the hardware comparator-cascade
    # tie rule).
    widen = np.int16 if blocks.dtype.itemsize == 1 else (
        np.int64 if blocks.dtype.kind in "iu" else np.float64)
    magnitude = np.abs(blocks.astype(widen))
    threshold = np.sort(magnitude, axis=1)[:, bz - keep:bz - keep + 1]
    above = magnitude > threshold
    quota = keep - np.count_nonzero(above, axis=1, keepdims=True)
    at = magnitude == threshold
    mask = above | (at & (np.cumsum(at, axis=1) <= quota))
    return mask & (blocks != 0)


def prune_blocks(blocks: np.ndarray, keep: int) -> np.ndarray:
    """Zero all but the ``keep`` largest-magnitude entries of each row."""
    mask = topk_block_mask(blocks, keep)
    return np.where(mask, blocks, np.zeros_like(blocks))


def _as_blocks(tensor: np.ndarray, block_size: int) -> np.ndarray:
    flat = tensor.reshape(-1)
    if flat.size % block_size:
        raise ValueError(
            f"tensor size {flat.size} is not a multiple of BZ={block_size}; "
            f"pad the channel axis first"
        )
    return flat.reshape(-1, block_size)


def prune_weights_dbb(
    weights: np.ndarray, spec: DBBSpec, keep: Optional[int] = None
) -> np.ndarray:
    """Prune a weight tensor to satisfy a DBB bound (one-shot Top-NNZ).

    Blocks run along the last axis, which after im2col lowering is the GEMM
    reduction (input-channel) axis. The last axis length must be a multiple
    of ``BZ``. Returns a dense-layout array with the same shape and dtype.
    """
    weights = np.asarray(weights)
    keep = spec.max_nnz if keep is None else keep
    original_shape = weights.shape
    blocks = _as_blocks(weights, spec.block_size)
    pruned = prune_blocks(blocks, keep)
    return pruned.reshape(original_shape).astype(weights.dtype)


def is_dbb_compliant(tensor: np.ndarray, spec: DBBSpec) -> bool:
    """True when no block exceeds the spec's NNZ bound."""
    tensor = np.asarray(tensor)
    flat = tensor.reshape(-1)
    pad = (-flat.size) % spec.block_size
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=flat.dtype)])
    counts = np.count_nonzero(flat.reshape(-1, spec.block_size), axis=1)
    return bool(np.all(counts <= spec.max_nnz))


@dataclass
class PruningSchedule:
    """Progressive per-block magnitude pruning over fine-tuning epochs.

    The paper prunes progressively until the DBB constraint is met
    (Sec. 8.1). The schedule linearly ramps the per-block keep count from
    ``BZ`` (dense) at ``start_epoch`` down to the target ``NNZ`` at
    ``end_epoch``; between epochs the keep count is held.
    """

    spec: DBBSpec
    start_epoch: int = 0
    end_epoch: int = 20

    def __post_init__(self) -> None:
        if self.end_epoch < self.start_epoch:
            raise ValueError("end_epoch must be >= start_epoch")

    def keep_at(self, epoch: int) -> int:
        """Per-block keep count in effect at ``epoch``."""
        if epoch <= self.start_epoch:
            return self.spec.block_size
        if epoch >= self.end_epoch:
            return self.spec.max_nnz
        span = self.end_epoch - self.start_epoch
        progress = (epoch - self.start_epoch) / span
        keep_range = self.spec.block_size - self.spec.max_nnz
        return self.spec.block_size - int(round(progress * keep_range))

    def apply(self, weights: np.ndarray, epoch: int) -> np.ndarray:
        """Prune ``weights`` to the keep count for ``epoch``."""
        return prune_weights_dbb(weights, self.spec, keep=self.keep_at(epoch))

    def done(self, epoch: int) -> bool:
        """True once the target NNZ bound is in force."""
        return epoch >= self.end_epoch
