"""Naive per-block reference implementations (the pre-vectorization seed).

The array-backed :class:`~repro.core.dbb.DBBTensor` and the vectorized
kernels in :mod:`repro.core.gemm` / :mod:`repro.arch.systolic` promise
bit-identical results with the straightforward per-block Python walk a
hardware engineer would write from Fig. 5/6 of the paper. This module
*keeps* that walk: every function here loops block by block through the
lazily-materialized :class:`~repro.core.dbb.DBBBlock` views, exactly as
the original implementation did.

These are ground truth for the bit-exactness fuzz suite
(``tests/core/test_reference_fuzz.py``) — never call them on large
tensors; they are O(M*N*K) Python loops on purpose.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.dbb import DBBBlock, DBBSpec, DBBTensor, compress_block, \
    expand_block, pad_to_blocks

__all__ = [
    "naive_compress_blocks",
    "naive_decompress",
    "naive_dbb_gemm",
    "naive_joint_dbb_gemm",
    "naive_wdbb_fired",
    "naive_awdbb_fired",
]


def naive_compress_blocks(matrix: np.ndarray,
                          spec: DBBSpec) -> List[List[DBBBlock]]:
    """Per-block compression (the original object-per-block path)."""
    matrix = np.asarray(matrix)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    bz = spec.block_size
    blocks: List[List[DBBBlock]] = []
    for r in range(matrix.shape[0]):
        padded = pad_to_blocks(matrix[r], bz)
        blocks.append([
            compress_block(padded[b * bz:(b + 1) * bz], spec)
            for b in range(padded.shape[0] // bz)
        ])
    return blocks


def naive_decompress(blocks: List[List[DBBBlock]], cols: int,
                     dtype=np.float64) -> np.ndarray:
    """Per-block expansion of a list-of-lists of :class:`DBBBlock`."""
    rows = len(blocks)
    blocks_per_row = len(blocks[0]) if rows else 0
    if not blocks_per_row:
        return np.zeros((rows, cols), dtype=dtype)
    bz = blocks[0][0].spec.block_size
    out = np.zeros((rows, blocks_per_row * bz), dtype=dtype)
    for r, row in enumerate(blocks):
        for b, block in enumerate(row):
            out[r, b * bz:(b + 1) * bz] = expand_block(block, dtype=dtype)
    return out[:, :cols]


def naive_dbb_gemm(a: np.ndarray, w_dbb: DBBTensor,
                   accumulate_dtype=np.int64) -> np.ndarray:
    """Per-block walk of the DP4M8 weight stream (S2TA-W mode)."""
    a = np.asarray(a)
    m, k = a.shape
    n = w_dbb.num_rows
    bz = w_dbb.spec.block_size
    out = np.zeros((m, n), dtype=accumulate_dtype)
    a_wide = a.astype(accumulate_dtype)
    for col in range(n):
        for b, block in enumerate(w_dbb.row_blocks(col)):
            base = b * bz
            for pos, val in block.nonzero_pairs():
                idx = base + pos
                if idx >= k:
                    continue  # zero padding of the last block
                out[:, col] += a_wide[:, idx] * accumulate_dtype(val)
    return out


def naive_joint_dbb_gemm(
    a_dbb: DBBTensor, w_dbb: DBBTensor, accumulate_dtype=np.int64
) -> np.ndarray:
    """Per-block mask-intersection walk of the DP1M4 stream (S2TA-AW)."""
    if a_dbb.spec.block_size != w_dbb.spec.block_size:
        raise ValueError("operand block sizes differ")
    if a_dbb.blocks_per_row != w_dbb.blocks_per_row:
        raise ValueError("reduction lengths differ")
    m = a_dbb.num_rows
    n = w_dbb.num_rows
    out = np.zeros((m, n), dtype=accumulate_dtype)
    for row in range(m):
        a_blocks = a_dbb.row_blocks(row)
        for col in range(n):
            w_blocks = w_dbb.row_blocks(col)
            acc = accumulate_dtype(0)
            for a_block, w_block in zip(a_blocks, w_blocks):
                match = a_block.mask & w_block.mask
                if not match:
                    continue
                a_vals = dict(a_block.nonzero_pairs())
                w_vals = dict(w_block.nonzero_pairs())
                pos = 0
                mask = match
                while mask:
                    if mask & 1:
                        acc += accumulate_dtype(a_vals[pos]) * accumulate_dtype(
                            w_vals[pos]
                        )
                    mask >>= 1
                    pos += 1
            out[row, col] = acc
    return out


def naive_wdbb_fired(a: np.ndarray, w_dbb: DBBTensor) -> int:
    """Fired-MAC count of the W-DBB array: per stored non-zero weight,
    one MAC per non-zero activation at the matching reduction index."""
    a = np.asarray(a)
    k = a.shape[1]
    bz = w_dbb.spec.block_size
    a_nz_cols = (a != 0).sum(axis=0)
    fired = 0
    for col in range(w_dbb.num_rows):
        for b, block in enumerate(w_dbb.row_blocks(col)):
            for pos, val in block.nonzero_pairs():
                idx = b * bz + pos
                if idx < k and val != 0:
                    fired += int(a_nz_cols[idx])
    return fired


def naive_awdbb_fired(a_dbb: DBBTensor, w_dbb: DBBTensor) -> int:
    """Fired-MAC count of the time-unrolled array: popcount of the
    activation/weight bitmask intersection over every (row, col, block)."""
    fired = 0
    for row in range(a_dbb.num_rows):
        a_blocks = a_dbb.row_blocks(row)
        for col in range(w_dbb.num_rows):
            for a_block, w_block in zip(a_blocks, w_dbb.row_blocks(col)):
                match = a_block.mask & w_block.mask
                fired += bin(match).count("1")
    return fired
