"""Density Bound Block (DBB) tensor format (paper Sec. 3.1, Fig. 4 and 5).

A DBB tensor divides a data tensor into 1-D blocks of ``block_size`` (``BZ``)
elements along the channel (innermost) dimension, and bounds the number of
non-zero elements per block by ``max_nnz`` (``NNZ``). Each block is stored
compressed: the (up to ``NNZ``) non-zero values, plus a ``BZ``-bit positional
bitmask ``M`` with bit *i* set when expanded position *i* holds a non-zero.

A block with fewer than ``NNZ`` non-zeros stores explicit zeros in the unused
value slots (Fig. 5), so the compressed value payload always has a fixed
size — this is what makes the hardware's worst-case workload statically
known. The paper writes a DBB configuration as the ratio ``NNZ/BZ`` (e.g.
``4/8``).

Storage layout (struct-of-arrays backend)
-----------------------------------------
:class:`DBBTensor` holds three ndarrays instead of per-block Python objects:

- ``values``    — ``(rows, n_blocks, NNZ)``, the fixed-size value payload.
  Slot order is the hardware stream order: stored non-zeros in ascending
  expanded position, then explicit zeros for the unused slots.
- ``masks``     — ``(rows, n_blocks)`` unsigned ints, the positional
  bitmasks (bit *i* set when expanded position *i* is non-zero).
- ``positions`` — ``(rows, n_blocks, NNZ)``, the expanded position each
  value slot scatters to. Invariant: positions are *distinct within a
  block*, and every unused slot points at a position whose expanded value
  is zero — so ``decompress`` is a single collision-free
  ``put_along_axis`` scatter.

Everything on the hot path (``compress``, ``decompress``, the GEMM kernels
in :mod:`repro.core.gemm`, the event counting in
:mod:`repro.arch.systolic`) operates on these arrays with whole-tensor
NumPy primitives (reshape, stable ``argsort``, ``take_along_axis``), never
per-block Python loops. Compression/expansion is exact (values are moved,
never transformed), so every consumer is bit-identical with the retained
per-block reference implementation in :mod:`repro.core.reference` — this
equivalence is fuzz-tested.

:class:`DBBBlock` remains as a thin, lazily-materialized per-block view
(:meth:`DBBTensor.row_blocks` / :attr:`DBBTensor.blocks`) for API
compatibility and for the unit-level datapath models that consume single
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DBBSpec",
    "DBBBlock",
    "DBBTensor",
    "compress",
    "compress_block",
    "decompress",
    "expand_block",
    "pad_to_blocks",
    "blocked_rows",
    "mask_to_positions",
    "positions_to_mask",
    "popcount",
]

# Largest BZ the array backend can bitmask (uint64). The serialized format
# (repro.core.serialize) has the same 64-element limit.
MAX_BLOCK_SIZE = 64

#: 256-entry popcount lookup table: NumPy<2 compatible (no np.bitwise_count).
_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)],
                         dtype=np.uint8)


def popcount(masks: np.ndarray) -> np.ndarray:
    """Per-element population count of an unsigned integer array.

    Views each element as its constituent bytes and sums a 256-entry
    lookup table, so it works on any NumPy (no ``np.bitwise_count``
    dependency) and any unsigned dtype.
    """
    masks = np.ascontiguousarray(masks)
    if masks.dtype.kind != "u":
        masks = masks.astype(np.uint64)
    as_bytes = masks.view(np.uint8).reshape(masks.shape + (masks.dtype.itemsize,))
    return _POPCOUNT_LUT[as_bytes].sum(axis=-1, dtype=np.int64)


def _mask_dtype(block_size: int):
    return np.uint32 if block_size <= 32 else np.uint64


@dataclass(frozen=True)
class DBBSpec:
    """A DBB configuration ``NNZ/BZ``.

    Parameters
    ----------
    block_size:
        ``BZ``, number of expanded elements per block (paper uses 8).
    max_nnz:
        ``NNZ``, the density bound — maximum non-zeros per block.
    """

    block_size: int = 8
    max_nnz: int = 4

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if not 0 < self.max_nnz <= self.block_size:
            raise ValueError(
                f"max_nnz must be in [1, block_size={self.block_size}], "
                f"got {self.max_nnz}"
            )

    @property
    def density_bound(self) -> float:
        """Maximum density this spec permits (``NNZ / BZ``)."""
        return self.max_nnz / self.block_size

    @property
    def is_dense(self) -> bool:
        """True when the bound is vacuous (``NNZ == BZ``, dense fallback)."""
        return self.max_nnz == self.block_size

    @property
    def ratio(self) -> str:
        """The paper's ``NNZ/BZ`` notation, e.g. ``"4/8"``."""
        return f"{self.max_nnz}/{self.block_size}"

    def compressed_value_bytes(self, element_bytes: int = 1) -> int:
        """Bytes of value payload per compressed block."""
        return self.max_nnz * element_bytes

    def mask_bytes(self) -> float:
        """Bytes of positional bitmask per block (may be fractional)."""
        return self.block_size / 8.0

    def compressed_block_bytes(self, element_bytes: int = 1) -> float:
        """Total compressed bytes per block: values plus bitmask."""
        return self.compressed_value_bytes(element_bytes) + self.mask_bytes()

    def compression_ratio(self, element_bytes: int = 1) -> float:
        """Dense bytes over compressed bytes for one block."""
        dense = self.block_size * element_bytes
        return dense / self.compressed_block_bytes(element_bytes)

    def with_nnz(self, max_nnz: int) -> "DBBSpec":
        """Return a copy of this spec with a different density bound."""
        return DBBSpec(block_size=self.block_size, max_nnz=max_nnz)


def positions_to_mask(positions: Iterable[int], block_size: int) -> int:
    """Encode non-zero positions as a bitmask (bit i == position i non-zero).

    Matches Fig. 5/8 of the paper, where e.g. positions {0, 2, 3, 6} in a
    BZ=8 block give ``M = 8'h4D`` (0b0100_1101).
    """
    mask = 0
    for pos in positions:
        if not 0 <= pos < block_size:
            raise ValueError(f"position {pos} out of range for BZ={block_size}")
        if mask & (1 << pos):
            raise ValueError(f"duplicate position {pos}")
        mask |= 1 << pos
    return mask


def mask_to_positions(mask: int, block_size: int) -> List[int]:
    """Decode a positional bitmask into an ascending list of positions."""
    if mask < 0 or mask >= (1 << block_size):
        raise ValueError(f"mask {mask:#x} out of range for BZ={block_size}")
    return [i for i in range(block_size) if mask & (1 << i)]


@dataclass(frozen=True)
class DBBBlock:
    """One compressed DBB block.

    ``values`` always has exactly ``spec.max_nnz`` entries; trailing slots of
    a block with fewer non-zeros hold explicit zeros and their positions are
    absent from ``mask``. Values are stored in ascending position order,
    which is the order the hardware streams them.
    """

    spec: DBBSpec
    values: Tuple
    mask: int

    def __post_init__(self) -> None:
        if len(self.values) != self.spec.max_nnz:
            raise ValueError(
                f"values must have {self.spec.max_nnz} slots, got {len(self.values)}"
            )
        positions = mask_to_positions(self.mask, self.spec.block_size)
        if len(positions) > self.spec.max_nnz:
            raise ValueError(
                f"mask {self.mask:#x} encodes {len(positions)} non-zeros, "
                f"exceeding the density bound {self.spec.ratio}"
            )

    @property
    def nnz(self) -> int:
        """Number of positions present in the bitmask."""
        return bin(self.mask).count("1")

    @property
    def positions(self) -> List[int]:
        """Ascending expanded positions of the stored non-zeros."""
        return mask_to_positions(self.mask, self.spec.block_size)

    def expand(self) -> np.ndarray:
        """Expand back to the dense ``BZ``-element block."""
        return expand_block(self, dtype=None)

    def nonzero_pairs(self) -> List[Tuple[int, object]]:
        """(position, value) pairs for the stored non-zeros, in stream order."""
        return list(zip(self.positions, self.values))


def compress_block(block: Sequence, spec: DBBSpec) -> DBBBlock:
    """Compress one dense ``BZ``-element block into a :class:`DBBBlock`.

    This is the per-block reference path; whole tensors go through the
    vectorized :func:`compress`.

    Raises
    ------
    ValueError
        If the block violates the density bound (more than ``NNZ`` non-zeros).
        Use :func:`repro.core.dap.dap_prune` or
        :func:`repro.core.pruning.prune_weights_dbb` first to enforce it.
    """
    arr = np.asarray(block)
    if arr.shape != (spec.block_size,):
        raise ValueError(
            f"block must have shape ({spec.block_size},), got {arr.shape}"
        )
    positions = np.flatnonzero(arr)
    if len(positions) > spec.max_nnz:
        raise ValueError(
            f"block has {len(positions)} non-zeros, exceeds bound {spec.ratio}; "
            f"prune first (DAP for activations, magnitude pruning for weights)"
        )
    mask = positions_to_mask(positions.tolist(), spec.block_size)
    values = [arr[p] for p in positions]
    values += [arr.dtype.type(0)] * (spec.max_nnz - len(values))
    return DBBBlock(spec=spec, values=tuple(values), mask=mask)


def expand_block(block: DBBBlock, dtype=None) -> np.ndarray:
    """Expand a compressed block back to its dense ``BZ`` elements."""
    spec = block.spec
    if dtype is None:
        dtype = np.asarray(block.values).dtype
    out = np.zeros(spec.block_size, dtype=dtype)
    for pos, val in zip(block.positions, block.values):
        out[pos] = val
    return out


def pad_to_blocks(vector: np.ndarray, block_size: int) -> np.ndarray:
    """Zero-pad a 1-D vector so its length is a multiple of ``block_size``."""
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    remainder = vector.shape[0] % block_size
    if remainder == 0:
        return vector
    pad = block_size - remainder
    return np.concatenate([vector, np.zeros(pad, dtype=vector.dtype)])


def blocked_rows(
    tensor: np.ndarray, block_size: int
) -> Tuple[np.ndarray, Tuple[int, int], int]:
    """Block any tensor along its last axis: ``(blocks, work_shape, last)``.

    Flattens all leading axes, zero-pads the last axis to a whole number
    of blocks, and returns the ``(n_total_blocks, block_size)`` view plus
    the padded 2-D working shape and the original last-axis length —
    enough to undo the transform:
    ``blocks.reshape(work_shape)[:, :last].reshape(original_shape)``.
    Shared by DAP (software and hardware models) and the DBB codec.
    """
    tensor = np.asarray(tensor)
    last = tensor.shape[-1]
    pad = (-last) % block_size
    work = tensor.reshape(-1, last)
    if pad:
        work = np.concatenate(
            [work, np.zeros((work.shape[0], pad), dtype=work.dtype)], axis=1
        )
    return work.reshape(-1, block_size), work.shape, last


def _compress_arrays(
    matrix: np.ndarray, spec: DBBSpec
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized core of :func:`compress`: dense 2-D -> (values, masks,
    positions) arrays. ``matrix`` must already be 2-D."""
    rows, cols = matrix.shape
    bz = spec.block_size
    if bz > MAX_BLOCK_SIZE:
        raise ValueError(
            f"block_size {bz} exceeds the {MAX_BLOCK_SIZE}-element limit of "
            f"the array backend"
        )
    n_blocks = -(-cols // bz)
    padded = np.zeros((rows, n_blocks * bz), dtype=matrix.dtype)
    padded[:, :cols] = matrix
    work = padded.reshape(rows, n_blocks, bz)
    nonzero = work != 0
    counts = nonzero.sum(axis=-1)
    if counts.size and int(counts.max()) > spec.max_nnz:
        r, b = np.unravel_index(int(np.argmax(counts)), counts.shape)
        raise ValueError(
            f"block has {int(counts[r, b])} non-zeros, exceeds bound "
            f"{spec.ratio}; prune first (DAP for activations, magnitude "
            f"pruning for weights)"
        )
    # Stable argsort of the zero-flag puts non-zero positions first in
    # ascending order, then the zero positions (ascending). The first NNZ
    # entries are therefore the stream-order scatter targets, all distinct,
    # with every unused slot aimed at a zero element — the invariant that
    # makes decompression a collision-free scatter.
    order = np.argsort(~nonzero, axis=-1, kind="stable")
    positions = order[..., : spec.max_nnz].astype(np.uint8)
    values = np.take_along_axis(work, positions, axis=-1)
    bit_weights = (np.uint64(1) << np.arange(bz, dtype=np.uint64))
    masks = (nonzero * bit_weights).sum(axis=-1, dtype=np.uint64)
    return values, masks.astype(_mask_dtype(bz)), positions


class DBBTensor:
    """A 2-D tensor compressed in DBB format along its last axis.

    The paper blocks tensors along the channel dimension (Fig. 5); after
    im2col lowering (``repro.nn.im2col``) that is the GEMM reduction axis,
    which is the last axis here. Rows are independent; each row is a
    sequence of compressed blocks.

    Attributes
    ----------
    spec: the DBB configuration.
    shape: the original (unpadded) dense shape ``(rows, cols)``.
    values: ``(rows, n_blocks, NNZ)`` fixed-size value payload.
    masks: ``(rows, n_blocks)`` positional bitmasks.
    positions: ``(rows, n_blocks, NNZ)`` per-slot scatter targets.

    The arrays are shared, not copied — treat a ``DBBTensor`` as immutable.
    ``blocks[r][b]`` / :meth:`row_blocks` materialize :class:`DBBBlock`
    views lazily for per-block consumers.
    """

    def __init__(self, spec: DBBSpec, shape: Tuple[int, int],
                 values=None, masks=None, positions=None, blocks=None):
        self.spec = spec
        self.shape = shape
        if blocks is None and isinstance(values, list):
            # Legacy positional call: DBBTensor(spec, shape, blocks).
            blocks, values = values, None
        if blocks is not None:
            values, masks, positions = self._arrays_from_blocks(
                spec, shape, blocks)
        if values is None or masks is None or positions is None:
            raise ValueError(
                "DBBTensor needs either (values, masks, positions) arrays "
                "or a blocks list"
            )
        self.values = np.asarray(values)
        self.masks = np.asarray(masks)
        self.positions = np.asarray(positions)
        self._blocks_cache: Optional[List[List[DBBBlock]]] = None

    @staticmethod
    def _arrays_from_blocks(spec: DBBSpec, shape: Tuple[int, int], blocks):
        """Convert a legacy list-of-lists of :class:`DBBBlock` to arrays."""
        rows = len(blocks)
        n_blocks = len(blocks[0]) if rows else 0
        dense = np.zeros((rows, n_blocks * spec.block_size))
        for r, row in enumerate(blocks):
            for b, block in enumerate(row):
                start = b * spec.block_size
                dense[r, start:start + spec.block_size] = expand_block(
                    block, dtype=np.float64)
        return _compress_arrays(dense, spec)

    @property
    def blocks_per_row(self) -> int:
        return self.masks.shape[1] if self.masks.ndim == 2 else 0

    @property
    def num_rows(self) -> int:
        return self.masks.shape[0]

    @property
    def nnz(self) -> int:
        """Total non-zeros stored (from the bitmasks)."""
        return int(popcount(self.masks).sum())

    @property
    def density(self) -> float:
        """Stored non-zeros over the original dense element count."""
        rows, cols = self.shape
        return self.nnz / float(rows * cols) if rows * cols else 0.0

    def storage_bytes(self, element_bytes: int = 1) -> float:
        """Compressed footprint: fixed value payload + bitmasks."""
        n_blocks = self.num_rows * self.blocks_per_row
        return n_blocks * self.spec.compressed_block_bytes(element_bytes)

    def dense_bytes(self, element_bytes: int = 1) -> int:
        rows, cols = self.shape
        return rows * cols * element_bytes

    def _dense_padded(self, dtype=np.float64) -> np.ndarray:
        """Expand to the block-padded dense array ``(rows, n_blocks * BZ)``.

        One collision-free scatter: positions are distinct per block and
        unused slots carry zero values aimed at zero positions.
        """
        rows = self.num_rows
        bz = self.spec.block_size
        out = np.zeros((rows, self.blocks_per_row, bz), dtype=dtype)
        if self.values.size:
            np.put_along_axis(out, self.positions.astype(np.intp),
                              self.values.astype(dtype), axis=-1)
        return out.reshape(rows, self.blocks_per_row * bz)

    def to_dense(self, dtype=None) -> np.ndarray:
        """Decompress to the original dense array (padding removed)."""
        rows, cols = self.shape
        dense = self._dense_padded(
            dtype=dtype if dtype is not None else np.float64)
        return dense[:, :cols]

    def row_blocks(self, row: int) -> List[DBBBlock]:
        """Materialize row ``row`` as :class:`DBBBlock` views (lazy)."""
        if self._blocks_cache is not None:
            return self._blocks_cache[row]
        return [
            DBBBlock(spec=self.spec,
                     values=tuple(self.values[row, b]),
                     mask=int(self.masks[row, b]))
            for b in range(self.blocks_per_row)
        ]

    @property
    def blocks(self) -> List[List[DBBBlock]]:
        """Lazily-materialized (and cached) per-block object view."""
        if self._blocks_cache is None:
            cache = []
            for r in range(self.num_rows):
                cache.append([
                    DBBBlock(spec=self.spec,
                             values=tuple(self.values[r, b]),
                             mask=int(self.masks[r, b]))
                    for b in range(self.blocks_per_row)
                ])
            self._blocks_cache = cache
        return self._blocks_cache

    def __repr__(self) -> str:
        return (f"DBBTensor(spec={self.spec.ratio}, shape={self.shape}, "
                f"density={self.density:.3f})")


def compress(matrix: np.ndarray, spec: DBBSpec) -> DBBTensor:
    """Compress a 1-D or 2-D array into DBB format along the last axis.

    The array must already satisfy the density bound per block; 1-D input is
    treated as a single row. Rows are zero-padded to a whole number of
    blocks (padding never violates the bound). Fully vectorized — no
    per-block Python objects are created; :class:`DBBBlock` views
    materialize lazily on access.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got shape {matrix.shape}")
    values, masks, positions = _compress_arrays(matrix, spec)
    return DBBTensor(spec=spec, shape=matrix.shape,
                     values=values, masks=masks, positions=positions)


def decompress(tensor: DBBTensor, dtype=None) -> np.ndarray:
    """Inverse of :func:`compress` (round-trips exactly)."""
    return tensor.to_dense(dtype=dtype)
