"""Density Bound Block (DBB) tensor format (paper Sec. 3.1, Fig. 4 and 5).

A DBB tensor divides a data tensor into 1-D blocks of ``block_size`` (``BZ``)
elements along the channel (innermost) dimension, and bounds the number of
non-zero elements per block by ``max_nnz`` (``NNZ``). Each block is stored
compressed: the (up to ``NNZ``) non-zero values, plus a ``BZ``-bit positional
bitmask ``M`` with bit *i* set when expanded position *i* holds a non-zero.

A block with fewer than ``NNZ`` non-zeros stores explicit zeros in the unused
value slots (Fig. 5), so the compressed value payload always has a fixed
size — this is what makes the hardware's worst-case workload statically
known. The paper writes a DBB configuration as the ratio ``NNZ/BZ`` (e.g.
``4/8``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "DBBSpec",
    "DBBBlock",
    "DBBTensor",
    "compress",
    "compress_block",
    "decompress",
    "expand_block",
    "pad_to_blocks",
    "mask_to_positions",
    "positions_to_mask",
]


@dataclass(frozen=True)
class DBBSpec:
    """A DBB configuration ``NNZ/BZ``.

    Parameters
    ----------
    block_size:
        ``BZ``, number of expanded elements per block (paper uses 8).
    max_nnz:
        ``NNZ``, the density bound — maximum non-zeros per block.
    """

    block_size: int = 8
    max_nnz: int = 4

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if not 0 < self.max_nnz <= self.block_size:
            raise ValueError(
                f"max_nnz must be in [1, block_size={self.block_size}], "
                f"got {self.max_nnz}"
            )

    @property
    def density_bound(self) -> float:
        """Maximum density this spec permits (``NNZ / BZ``)."""
        return self.max_nnz / self.block_size

    @property
    def is_dense(self) -> bool:
        """True when the bound is vacuous (``NNZ == BZ``, dense fallback)."""
        return self.max_nnz == self.block_size

    @property
    def ratio(self) -> str:
        """The paper's ``NNZ/BZ`` notation, e.g. ``"4/8"``."""
        return f"{self.max_nnz}/{self.block_size}"

    def compressed_value_bytes(self, element_bytes: int = 1) -> int:
        """Bytes of value payload per compressed block."""
        return self.max_nnz * element_bytes

    def mask_bytes(self) -> float:
        """Bytes of positional bitmask per block (may be fractional)."""
        return self.block_size / 8.0

    def compressed_block_bytes(self, element_bytes: int = 1) -> float:
        """Total compressed bytes per block: values plus bitmask."""
        return self.compressed_value_bytes(element_bytes) + self.mask_bytes()

    def compression_ratio(self, element_bytes: int = 1) -> float:
        """Dense bytes over compressed bytes for one block."""
        dense = self.block_size * element_bytes
        return dense / self.compressed_block_bytes(element_bytes)

    def with_nnz(self, max_nnz: int) -> "DBBSpec":
        """Return a copy of this spec with a different density bound."""
        return DBBSpec(block_size=self.block_size, max_nnz=max_nnz)


def positions_to_mask(positions: Iterable[int], block_size: int) -> int:
    """Encode non-zero positions as a bitmask (bit i == position i non-zero).

    Matches Fig. 5/8 of the paper, where e.g. positions {0, 2, 3, 6} in a
    BZ=8 block give ``M = 8'h4D`` (0b0100_1101).
    """
    mask = 0
    for pos in positions:
        if not 0 <= pos < block_size:
            raise ValueError(f"position {pos} out of range for BZ={block_size}")
        if mask & (1 << pos):
            raise ValueError(f"duplicate position {pos}")
        mask |= 1 << pos
    return mask


def mask_to_positions(mask: int, block_size: int) -> List[int]:
    """Decode a positional bitmask into an ascending list of positions."""
    if mask < 0 or mask >= (1 << block_size):
        raise ValueError(f"mask {mask:#x} out of range for BZ={block_size}")
    return [i for i in range(block_size) if mask & (1 << i)]


@dataclass(frozen=True)
class DBBBlock:
    """One compressed DBB block.

    ``values`` always has exactly ``spec.max_nnz`` entries; trailing slots of
    a block with fewer non-zeros hold explicit zeros and their positions are
    absent from ``mask``. Values are stored in ascending position order,
    which is the order the hardware streams them.
    """

    spec: DBBSpec
    values: Tuple
    mask: int

    def __post_init__(self) -> None:
        if len(self.values) != self.spec.max_nnz:
            raise ValueError(
                f"values must have {self.spec.max_nnz} slots, got {len(self.values)}"
            )
        positions = mask_to_positions(self.mask, self.spec.block_size)
        if len(positions) > self.spec.max_nnz:
            raise ValueError(
                f"mask {self.mask:#x} encodes {len(positions)} non-zeros, "
                f"exceeding the density bound {self.spec.ratio}"
            )

    @property
    def nnz(self) -> int:
        """Number of positions present in the bitmask."""
        return bin(self.mask).count("1")

    @property
    def positions(self) -> List[int]:
        """Ascending expanded positions of the stored non-zeros."""
        return mask_to_positions(self.mask, self.spec.block_size)

    def expand(self) -> np.ndarray:
        """Expand back to the dense ``BZ``-element block."""
        return expand_block(self, dtype=None)

    def nonzero_pairs(self) -> List[Tuple[int, object]]:
        """(position, value) pairs for the stored non-zeros, in stream order."""
        return list(zip(self.positions, self.values))


def compress_block(block: Sequence, spec: DBBSpec) -> DBBBlock:
    """Compress one dense ``BZ``-element block into a :class:`DBBBlock`.

    Raises
    ------
    ValueError
        If the block violates the density bound (more than ``NNZ`` non-zeros).
        Use :func:`repro.core.dap.dap_prune` or
        :func:`repro.core.pruning.prune_weights_dbb` first to enforce it.
    """
    arr = np.asarray(block)
    if arr.shape != (spec.block_size,):
        raise ValueError(
            f"block must have shape ({spec.block_size},), got {arr.shape}"
        )
    positions = np.flatnonzero(arr)
    if len(positions) > spec.max_nnz:
        raise ValueError(
            f"block has {len(positions)} non-zeros, exceeds bound {spec.ratio}; "
            f"prune first (DAP for activations, magnitude pruning for weights)"
        )
    mask = positions_to_mask(positions.tolist(), spec.block_size)
    values = [arr[p] for p in positions]
    values += [arr.dtype.type(0)] * (spec.max_nnz - len(values))
    return DBBBlock(spec=spec, values=tuple(values), mask=mask)


def expand_block(block: DBBBlock, dtype=None) -> np.ndarray:
    """Expand a compressed block back to its dense ``BZ`` elements."""
    spec = block.spec
    if dtype is None:
        dtype = np.asarray(block.values).dtype
    out = np.zeros(spec.block_size, dtype=dtype)
    for pos, val in zip(block.positions, block.values):
        out[pos] = val
    return out


def pad_to_blocks(vector: np.ndarray, block_size: int) -> np.ndarray:
    """Zero-pad a 1-D vector so its length is a multiple of ``block_size``."""
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    remainder = vector.shape[0] % block_size
    if remainder == 0:
        return vector
    pad = block_size - remainder
    return np.concatenate([vector, np.zeros(pad, dtype=vector.dtype)])


class DBBTensor:
    """A 2-D tensor compressed in DBB format along its last axis.

    The paper blocks tensors along the channel dimension (Fig. 5); after
    im2col lowering (``repro.nn.im2col``) that is the GEMM reduction axis,
    which is the last axis here. Rows are independent; each row is a
    sequence of compressed blocks.

    Attributes
    ----------
    spec: the DBB configuration.
    shape: the original (unpadded) dense shape ``(rows, cols)``.
    blocks: ``blocks[r][b]`` is block *b* of row *r*.
    """

    def __init__(self, spec: DBBSpec, shape: Tuple[int, int],
                 blocks: List[List[DBBBlock]]):
        self.spec = spec
        self.shape = shape
        self.blocks = blocks

    @property
    def blocks_per_row(self) -> int:
        return len(self.blocks[0]) if self.blocks else 0

    @property
    def num_rows(self) -> int:
        return len(self.blocks)

    @property
    def nnz(self) -> int:
        """Total non-zeros stored (from the bitmasks)."""
        return sum(b.nnz for row in self.blocks for b in row)

    @property
    def density(self) -> float:
        """Stored non-zeros over the original dense element count."""
        rows, cols = self.shape
        return self.nnz / float(rows * cols) if rows * cols else 0.0

    def storage_bytes(self, element_bytes: int = 1) -> float:
        """Compressed footprint: fixed value payload + bitmasks."""
        n_blocks = self.num_rows * self.blocks_per_row
        return n_blocks * self.spec.compressed_block_bytes(element_bytes)

    def dense_bytes(self, element_bytes: int = 1) -> int:
        rows, cols = self.shape
        return rows * cols * element_bytes

    def to_dense(self, dtype=None) -> np.ndarray:
        """Decompress to the original dense array (padding removed)."""
        rows, cols = self.shape
        bz = self.spec.block_size
        out = np.zeros((rows, self.blocks_per_row * bz),
                       dtype=dtype if dtype is not None else np.float64)
        for r, row in enumerate(self.blocks):
            for b, block in enumerate(row):
                out[r, b * bz:(b + 1) * bz] = expand_block(block, dtype=out.dtype)
        return out[:, :cols]

    def row_blocks(self, row: int) -> List[DBBBlock]:
        return self.blocks[row]

    def __repr__(self) -> str:
        return (f"DBBTensor(spec={self.spec.ratio}, shape={self.shape}, "
                f"density={self.density:.3f})")


def compress(matrix: np.ndarray, spec: DBBSpec) -> DBBTensor:
    """Compress a 1-D or 2-D array into DBB format along the last axis.

    The array must already satisfy the density bound per block; 1-D input is
    treated as a single row. Rows are zero-padded to a whole number of
    blocks (padding never violates the bound).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got shape {matrix.shape}")
    rows, cols = matrix.shape
    bz = spec.block_size
    blocks: List[List[DBBBlock]] = []
    for r in range(rows):
        padded = pad_to_blocks(matrix[r], bz)
        row_blocks = [
            compress_block(padded[b * bz:(b + 1) * bz], spec)
            for b in range(padded.shape[0] // bz)
        ]
        blocks.append(row_blocks)
    return DBBTensor(spec=spec, shape=(rows, cols), blocks=blocks)


def decompress(tensor: DBBTensor, dtype=None) -> np.ndarray:
    """Inverse of :func:`compress` (round-trips exactly)."""
    return tensor.to_dense(dtype=dtype)
