"""Dynamic Activation Pruning — DAP (paper Sec. 5.1 and 6.2).

Activations are produced at runtime, so unlike weights they cannot be
pruned offline. DAP applies *Top-NNZ* pruning per ``BZ`` block: the
``NNZ`` largest-magnitude elements are kept, the rest are forced to zero,
making every block DBB-compliant on the fly.

This module is the *algorithmic* (numpy) model used by training and by the
performance model; :mod:`repro.arch.dap_hw` models the cascaded
magnitude-maxpool hardware of Fig. 8 and is tested for bit-exact agreement
with this implementation (identical tie-breaking: lowest index wins among
equal magnitudes).

The paper caps hardware DAP at NNZ <= 5 (Sec. 6.2): above 5/8 the gains are
marginal and the layer simply runs dense (8/8). :func:`tune_layer_nnz`
implements the per-layer density tuning that yields profiles such as
ResNet50's 8/8 (early layers) down to 2/8 (late layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dbb import DBBSpec, blocked_rows
from repro.core.pruning import topk_block_mask

__all__ = [
    "DAP_MAX_HARDWARE_NNZ",
    "DAPResult",
    "dap_prune_blocks",
    "dap_prune",
    "dap_keep_fraction",
    "tune_layer_nnz",
]

# The DAP array cascades at most 5 maxpool stages (Sec. 6.2); layers
# needing more density bypass DAP and run dense.
DAP_MAX_HARDWARE_NNZ = 5


@dataclass
class DAPResult:
    """Outcome of pruning one tensor with DAP.

    Attributes
    ----------
    pruned:
        Dense-layout tensor after Top-NNZ pruning (same shape as input).
    keep_mask:
        Boolean mask of surviving elements (the STE gradient mask used by
        DAP-aware fine-tuning, Sec. 8.1).
    spec:
        The DBB bound that was enforced.
    pruned_fraction:
        Fraction of originally non-zero elements that DAP removed.
    """

    pruned: np.ndarray
    keep_mask: np.ndarray
    spec: DBBSpec
    pruned_fraction: float


def dap_prune_blocks(blocks: np.ndarray, nnz: int) -> np.ndarray:
    """Top-``nnz`` magnitude pruning on ``(n_blocks, BZ)`` rows."""
    mask = topk_block_mask(blocks, nnz)
    return np.where(mask, blocks, np.zeros_like(blocks))


def dap_prune(
    activations: np.ndarray, spec: DBBSpec, nnz: Optional[int] = None
) -> DAPResult:
    """Apply DAP to an activation tensor (blocks along the last axis).

    The last axis is the channel axis (the paper decomposes activations
    into 1x1xBZ channel blocks); it is zero-padded to a whole number of
    blocks internally, and the padding is stripped from the result.
    """
    activations = np.asarray(activations)
    nnz = spec.max_nnz if nnz is None else nnz
    if not 0 < nnz <= spec.block_size:
        raise ValueError(f"nnz must be in [1, BZ={spec.block_size}], got {nnz}")
    original_shape = activations.shape
    blocks, work_shape, last = blocked_rows(activations, spec.block_size)
    mask_blocks = topk_block_mask(blocks, nnz)
    pruned_blocks = np.where(mask_blocks, blocks, np.zeros_like(blocks))
    pruned = pruned_blocks.reshape(work_shape)[:, :last].reshape(original_shape)
    keep_mask = mask_blocks.reshape(work_shape)[:, :last].reshape(original_shape)
    nonzero_before = np.count_nonzero(activations)
    nonzero_after = np.count_nonzero(pruned)
    pruned_fraction = (
        (nonzero_before - nonzero_after) / nonzero_before if nonzero_before else 0.0
    )
    return DAPResult(
        pruned=pruned.astype(activations.dtype),
        keep_mask=keep_mask,
        spec=spec.with_nnz(nnz) if nnz != spec.max_nnz else spec,
        pruned_fraction=float(pruned_fraction),
    )


def dap_keep_fraction(activations: np.ndarray, spec: DBBSpec, nnz: int) -> float:
    """Fraction of the tensor's L1 mass that Top-``nnz`` DAP preserves.

    Used as the tuning signal for per-layer density selection: keeping the
    largest magnitudes preserves most of the signal energy even at low NNZ.
    """
    result = dap_prune(activations, spec, nnz=nnz)
    total = np.abs(activations.astype(np.float64)).sum()
    if total == 0:
        return 1.0
    kept = np.abs(result.pruned.astype(np.float64)).sum()
    return float(kept / total)


def tune_layer_nnz(
    activations: np.ndarray,
    spec: DBBSpec,
    keep_threshold: float = 0.98,
    max_nnz: int = DAP_MAX_HARDWARE_NNZ,
) -> int:
    """Choose the smallest per-layer NNZ preserving ``keep_threshold`` L1 mass.

    Models the paper's per-layer A-DBB tuning (Sec. 5.2, 8.1): early layers
    with dense, information-rich activations come out near 8/8 (dense
    bypass), later high-sparsity layers come out at 2/8–3/8. Returns
    ``spec.block_size`` (dense bypass) when even ``max_nnz`` falls short of
    the threshold, matching the hardware's 5-stage DAP cap.
    """
    if not 0.0 < keep_threshold <= 1.0:
        raise ValueError(f"keep_threshold must be in (0, 1], got {keep_threshold}")
    # Single-pass sweep: Top-k DAP keeps the k largest magnitudes of each
    # block, so the kept L1 mass at every candidate NNZ is one descending
    # sort + cumulative sum per block — instead of re-pruning the tensor
    # once per candidate as the naive loop did.
    raw_blocks, _, _ = blocked_rows(np.asarray(activations), spec.block_size)
    blocks = np.abs(raw_blocks.astype(np.float64))
    total = blocks.sum()
    if total == 0:
        return 1  # keep fraction is 1.0 at every NNZ; smallest wins
    descending = -np.sort(-blocks, axis=1)
    kept_at_nnz = descending.cumsum(axis=1).sum(axis=0)
    for nnz in range(1, max_nnz + 1):
        if kept_at_nnz[nnz - 1] / total >= keep_threshold:
            return nnz
    return spec.block_size
