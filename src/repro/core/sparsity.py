"""Sparsity statistics and synthetic sparse-tensor generators.

The paper's microbenchmarks (Sec. 8.2, Fig. 9) sweep synthetic DNN layers
with controlled weight/activation sparsity. This module provides the
generators for unstructured (random) sparsity and DBB-compliant sparsity,
plus the statistics used throughout the evaluation (density, per-block NNZ
histograms, DBB violation rates).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dbb import DBBSpec

__all__ = [
    "density",
    "sparsity",
    "block_nnz",
    "block_nnz_histogram",
    "dbb_violation_rate",
    "random_unstructured",
    "random_dbb_tensor",
    "relu_activations",
    "effective_block_density",
]


def density(tensor: np.ndarray) -> float:
    """Fraction of non-zero elements."""
    tensor = np.asarray(tensor)
    if tensor.size == 0:
        return 0.0
    return float(np.count_nonzero(tensor)) / tensor.size


def sparsity(tensor: np.ndarray) -> float:
    """Fraction of zero elements (``1 - density``)."""
    return 1.0 - density(tensor)


def _blocked(tensor: np.ndarray, block_size: int) -> np.ndarray:
    """Reshape the flattened tensor to (n_blocks, block_size), zero-padded."""
    flat = np.asarray(tensor).reshape(-1)
    remainder = flat.size % block_size
    if remainder:
        flat = np.concatenate(
            [flat, np.zeros(block_size - remainder, dtype=flat.dtype)]
        )
    return flat.reshape(-1, block_size)


def block_nnz(tensor: np.ndarray, block_size: int) -> np.ndarray:
    """Non-zero count of each ``block_size`` block along the last axis."""
    blocks = _blocked(tensor, block_size)
    return np.count_nonzero(blocks, axis=1)


def block_nnz_histogram(tensor: np.ndarray, block_size: int) -> Dict[int, int]:
    """Histogram {nnz: block count} over all blocks."""
    counts = block_nnz(tensor, block_size)
    values, freqs = np.unique(counts, return_counts=True)
    return {int(v): int(f) for v, f in zip(values, freqs)}


def dbb_violation_rate(tensor: np.ndarray, spec: DBBSpec) -> float:
    """Fraction of blocks exceeding the spec's density bound.

    For an unstructured tensor this predicts how much DAP/pruning must
    remove; for a correctly pruned tensor it is exactly 0.
    """
    counts = block_nnz(tensor, spec.block_size)
    if counts.size == 0:
        return 0.0
    return float(np.mean(counts > spec.max_nnz))


def effective_block_density(tensor: np.ndarray, spec: DBBSpec) -> float:
    """Average post-DAP stored density: mean(min(nnz, NNZ)) / BZ.

    This is the density the time-unrolled S2TA-AW datapath actually
    processes when blocks with fewer than NNZ non-zeros finish early is
    not exploited (the paper serializes ``na`` cycles per block where
    ``na`` is the layer's configured NNZ); it is used to estimate what a
    given NNZ choice preserves.
    """
    counts = np.minimum(block_nnz(tensor, spec.block_size), spec.max_nnz)
    return float(np.mean(counts)) / spec.block_size


def random_unstructured(
    shape: Tuple[int, ...],
    density_target: float,
    rng: Optional[np.random.Generator] = None,
    dtype=np.int8,
    value_range: Tuple[int, int] = (-127, 127),
) -> np.ndarray:
    """Random tensor with i.i.d. Bernoulli(density) non-zero pattern.

    Non-zero values are uniform over ``value_range`` excluding 0, matching
    the INT8 operand distributions used for switching-activity annotation.
    """
    if not 0.0 <= density_target <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density_target}")
    rng = rng or np.random.default_rng()
    mask = rng.random(shape) < density_target
    lo, hi = value_range
    magnitude = rng.integers(max(1, lo if lo > 0 else 1), hi + 1, size=shape)
    sign = rng.choice([-1, 1], size=shape)
    values = (magnitude * sign).astype(np.int64)
    out = np.where(mask, values, 0)
    return out.astype(dtype)


def random_dbb_tensor(
    shape: Tuple[int, ...],
    spec: DBBSpec,
    rng: Optional[np.random.Generator] = None,
    nnz: Optional[int] = None,
    dtype=np.int8,
    value_range: Tuple[int, int] = (-127, 127),
) -> np.ndarray:
    """Random dense-layout tensor that satisfies a DBB bound exactly.

    Each ``BZ`` block along the last axis receives exactly ``nnz``
    (default ``spec.max_nnz``) non-zeros at uniformly random positions.
    The returned array is dense-layout (zeros included); compress with
    :func:`repro.core.dbb.compress`.
    """
    rng = rng or np.random.default_rng()
    nnz = spec.max_nnz if nnz is None else nnz
    if not 0 <= nnz <= spec.block_size:
        raise ValueError(f"nnz must be in [0, BZ={spec.block_size}], got {nnz}")
    if shape[-1] % spec.block_size != 0:
        raise ValueError(
            f"last axis ({shape[-1]}) must be a multiple of BZ={spec.block_size}"
        )
    out = np.zeros(shape, dtype=np.int64)
    flat = out.reshape(-1, spec.block_size)
    lo, hi = value_range
    for i in range(flat.shape[0]):
        positions = rng.choice(spec.block_size, size=nnz, replace=False)
        magnitude = rng.integers(1, hi + 1, size=nnz)
        sign = rng.choice([-1, 1], size=nnz)
        flat[i, positions] = magnitude * sign
    return out.reshape(shape).astype(dtype)


def relu_activations(
    shape: Tuple[int, ...],
    density_target: float,
    rng: Optional[np.random.Generator] = None,
    dtype=np.int8,
) -> np.ndarray:
    """Synthetic post-ReLU activations: non-negative with controlled density.

    CNN activations after ReLU are zero-or-positive; the non-zero magnitudes
    follow a half-normal-ish distribution which matters for DAP magnitude
    ranking. Used by the DAP microbenchmarks.
    """
    rng = rng or np.random.default_rng()
    raw = rng.normal(0.0, 42.0, size=shape)
    threshold = np.quantile(raw, 1.0 - density_target) if density_target < 1.0 else -np.inf
    out = np.where(raw > threshold, np.clip(np.abs(raw), 1, 127), 0)
    return out.astype(dtype)
