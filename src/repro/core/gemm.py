"""Dense and DBB-sparse GEMM reference kernels.

These are the functional ground truth the hardware models are validated
against. All kernels compute ``C = A @ W`` with INT32 accumulation of INT8
operands (the accelerator's native mode) and are bit-exact with numpy's
dense matmul on the decompressed operands.

Orientation convention (matches ``repro.nn.im2col`` lowering):

- ``A`` is ``(M, K)`` — activations, M output pixels by K reduction.
- ``W`` is ``(K, N)`` — weights, N output channels.
- DBB blocks run along ``K`` (the channel/reduction axis), so activations
  are compressed row-wise and weights column-wise; :class:`DBBTensor`
  stores blocks along the *last* axis, so the weight operand is compressed
  from ``W.T`` (shape ``(N, K)``).

Execution strategy (array backend)
----------------------------------
Both sparse kernels run as *scatter-to-dense + one wide matmul*: the
compressed operand expands through :class:`DBBTensor`'s collision-free
scatter (exact — values are moved, never transformed) and the product is a
single ``@`` in the accumulation dtype. Because integer addition is
associative and expansion is exact, the results are bit-identical with the
per-block walk the hardware performs (retained in
:mod:`repro.core.reference` and fuzz-tested against). This is what lets
full-model layers (AlexNet conv2 is M=3025, K=1200, N=256) run at NumPy
speed instead of hours of Python block loops.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.core.dbb import DBBSpec, DBBTensor, compress

__all__ = [
    "dense_gemm",
    "dbb_gemm",
    "joint_dbb_gemm",
    "compress_operands",
    "compress_cached",
    "clear_compress_cache",
    "compress_cache_stats",
    "gemm_mac_count",
]

# float64 has a 53-bit exact-integer window; an integer matmul whose
# worst-case accumulated magnitude stays below it is bit-exact in BLAS.
_F64_EXACT_LIMIT = 2 ** 53


def _int_matmul(a: np.ndarray, w: np.ndarray, accumulate_dtype) -> np.ndarray:
    """Integer matmul, routed through float64 BLAS when provably exact.

    NumPy integer ``@`` runs a slow non-BLAS kernel; for INT8 operands the
    float64 product is bit-exact (every partial sum stays far below 2^53),
    and dgemm is ~20x faster — what makes full-model functional simulation
    (VGG conv layers are billions of MACs) tractable. Falls back to the
    integer kernel whenever exactness cannot be guaranteed.
    """
    if np.issubdtype(a.dtype, np.integer) and np.issubdtype(w.dtype, np.integer):
        k = a.shape[1]
        a_max = int(np.abs(a, dtype=np.int64).max()) if a.size else 0
        w_max = int(np.abs(w, dtype=np.int64).max()) if w.size else 0
        if k * a_max * w_max < _F64_EXACT_LIMIT:
            out = a.astype(np.float64) @ w.astype(np.float64)
            return out.astype(accumulate_dtype)
    return a.astype(accumulate_dtype) @ w.astype(accumulate_dtype)


def dense_gemm(a: np.ndarray, w: np.ndarray, accumulate_dtype=np.int64) -> np.ndarray:
    """Reference dense GEMM with wide accumulation.

    INT8 inputs accumulate in ``accumulate_dtype`` (INT32 in hardware;
    int64 here to sidestep numpy overflow semantics — values are validated
    to fit INT32 by the hardware models).
    """
    a = np.asarray(a)
    w = np.asarray(w)
    if a.ndim != 2 or w.ndim != 2 or a.shape[1] != w.shape[0]:
        raise ValueError(f"shape mismatch: A {a.shape} @ W {w.shape}")
    return _int_matmul(a, w, accumulate_dtype)


def compress_operands(
    a: np.ndarray,
    w: np.ndarray,
    a_spec: DBBSpec,
    w_spec: DBBSpec,
) -> Tuple[DBBTensor, DBBTensor]:
    """Compress GEMM operands: A row-blocked, W column-blocked (as W.T)."""
    a_dbb = compress(a, a_spec)
    w_dbb = compress(np.asarray(w).T, w_spec)
    return a_dbb, w_dbb


# --------------------------------------------------------------------- #
# Compressed-operand memo
# --------------------------------------------------------------------- #

_COMPRESS_CACHE: "OrderedDict[tuple, DBBTensor]" = OrderedDict()
_COMPRESS_CACHE_MAX = 64
_COMPRESS_CACHE_HITS = 0
_COMPRESS_CACHE_MISSES = 0


def compress_cached(matrix: np.ndarray, spec: DBBSpec) -> DBBTensor:
    """:func:`repro.core.dbb.compress` with a content-addressed LRU memo.

    Variant sweeps (DENSE/ZVCG/WDBB/AWDBB) and per-layer density sweeps
    re-run the same weight tensor through every mode and every ``a_nnz``
    point; the weights only need compressing once. The key hashes the
    array bytes plus shape/dtype/spec, so any numerically distinct operand
    gets its own entry. The returned tensor's arrays are shared — treat it
    as immutable (every library consumer does).
    """
    global _COMPRESS_CACHE_HITS, _COMPRESS_CACHE_MISSES
    matrix = np.ascontiguousarray(matrix)
    key = (spec, matrix.shape, matrix.dtype.str,
           hashlib.sha1(matrix.tobytes()).hexdigest())
    hit = _COMPRESS_CACHE.get(key)
    if hit is not None:
        _COMPRESS_CACHE.move_to_end(key)
        _COMPRESS_CACHE_HITS += 1
        return hit
    _COMPRESS_CACHE_MISSES += 1
    tensor = compress(matrix, spec)
    _COMPRESS_CACHE[key] = tensor
    while len(_COMPRESS_CACHE) > _COMPRESS_CACHE_MAX:
        _COMPRESS_CACHE.popitem(last=False)
    return tensor


def clear_compress_cache() -> None:
    """Drop all memoized compressed operands and reset the hit/miss
    accounting (mainly for tests/benchmarks)."""
    global _COMPRESS_CACHE_HITS, _COMPRESS_CACHE_MISSES
    _COMPRESS_CACHE.clear()
    _COMPRESS_CACHE_HITS = 0
    _COMPRESS_CACHE_MISSES = 0


def compress_cache_stats() -> dict:
    """Hit/miss accounting of the weight-compression memo.

    ``hits``/``misses`` count :func:`compress_cached` lookups since the
    last :func:`clear_compress_cache`; ``entries`` is the current resident
    count. A mode/density sweep over one workload should show exactly one
    miss per distinct weight tensor and hits everywhere else.
    """
    return {
        "hits": _COMPRESS_CACHE_HITS,
        "misses": _COMPRESS_CACHE_MISSES,
        "entries": len(_COMPRESS_CACHE),
    }


# --------------------------------------------------------------------- #
# Sparse kernels
# --------------------------------------------------------------------- #

def dbb_gemm(a: np.ndarray, w_dbb: DBBTensor, accumulate_dtype=np.int64) -> np.ndarray:
    """GEMM with dense activations and DBB-compressed weights (S2TA-W mode).

    Functionally models the DP4M8 datapath: only stored weight non-zeros
    contribute, steered to the matching activation element by the
    positional bitmask (the 8:1 mux of Fig. 6c). Executed as an exact
    scatter of the compressed weights to dense ``(N, K)`` followed by one
    wide matmul — bit-identical with the per-block walk for integer
    accumulation dtypes.
    """
    a = np.asarray(a)
    m, k = a.shape
    # Expand over the block-padded width, then crop/zero-extend to K: the
    # hardware skips stored positions beyond K (zero padding of the last
    # block), which the crop reproduces exactly.
    w_padded = w_dbb._dense_padded(dtype=w_dbb.values.dtype)  # (N, Kb*BZ)
    n, k_padded = w_padded.shape
    if k_padded >= k:
        w_k = w_padded[:, :k]
    else:
        w_k = np.zeros((n, k), dtype=w_padded.dtype)
        w_k[:, :k_padded] = w_padded
    return _int_matmul(a, np.ascontiguousarray(w_k.T), accumulate_dtype)


def joint_dbb_gemm(
    a_dbb: DBBTensor, w_dbb: DBBTensor, accumulate_dtype=np.int64
) -> np.ndarray:
    """GEMM with both operands DBB-compressed (S2TA-AW mode).

    Functionally models the time-unrolled DP1M4 stream (Fig. 6e): a MAC
    fires only where the activation and weight bitmasks intersect. Since
    both expansions are exact and the expanded operands are zero exactly
    where the bitmasks are unset, the dense product of the two expansions
    is bit-identical with the mask-intersection walk (retained in
    :mod:`repro.core.reference`).
    """
    if a_dbb.spec.block_size != w_dbb.spec.block_size:
        raise ValueError(
            f"operand block sizes differ: A BZ={a_dbb.spec.block_size}, "
            f"W BZ={w_dbb.spec.block_size}"
        )
    if a_dbb.blocks_per_row != w_dbb.blocks_per_row:
        raise ValueError(
            f"reduction lengths differ: A has {a_dbb.blocks_per_row} blocks, "
            f"W has {w_dbb.blocks_per_row}"
        )
    a_dense = a_dbb._dense_padded(dtype=a_dbb.values.dtype)  # (M, Kb*BZ)
    w_dense = w_dbb._dense_padded(dtype=w_dbb.values.dtype)  # (N, Kb*BZ)
    return _int_matmul(a_dense, np.ascontiguousarray(w_dense.T),
                       accumulate_dtype)


def gemm_mac_count(m: int, k: int, n: int) -> int:
    """Dense MAC count of an ``(M, K) @ (K, N)`` GEMM."""
    return m * k * n
