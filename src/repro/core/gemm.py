"""Dense and DBB-sparse GEMM reference kernels.

These are the functional ground truth the hardware models are validated
against. All kernels compute ``C = A @ W`` with INT32 accumulation of INT8
operands (the accelerator's native mode) and are bit-exact with numpy's
dense matmul on the decompressed operands.

Orientation convention (matches ``repro.nn.im2col`` lowering):

- ``A`` is ``(M, K)`` — activations, M output pixels by K reduction.
- ``W`` is ``(K, N)`` — weights, N output channels.
- DBB blocks run along ``K`` (the channel/reduction axis), so activations
  are compressed row-wise and weights column-wise; :class:`DBBTensor`
  stores blocks along the *last* axis, so the weight operand is compressed
  from ``W.T`` (shape ``(N, K)``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.dbb import DBBSpec, DBBTensor, compress

__all__ = [
    "dense_gemm",
    "dbb_gemm",
    "joint_dbb_gemm",
    "compress_operands",
    "gemm_mac_count",
]


def dense_gemm(a: np.ndarray, w: np.ndarray, accumulate_dtype=np.int64) -> np.ndarray:
    """Reference dense GEMM with wide accumulation.

    INT8 inputs accumulate in ``accumulate_dtype`` (INT32 in hardware;
    int64 here to sidestep numpy overflow semantics — values are validated
    to fit INT32 by the hardware models).
    """
    a = np.asarray(a)
    w = np.asarray(w)
    if a.ndim != 2 or w.ndim != 2 or a.shape[1] != w.shape[0]:
        raise ValueError(f"shape mismatch: A {a.shape} @ W {w.shape}")
    return a.astype(accumulate_dtype) @ w.astype(accumulate_dtype)


def compress_operands(
    a: np.ndarray,
    w: np.ndarray,
    a_spec: DBBSpec,
    w_spec: DBBSpec,
) -> Tuple[DBBTensor, DBBTensor]:
    """Compress GEMM operands: A row-blocked, W column-blocked (as W.T)."""
    a_dbb = compress(a, a_spec)
    w_dbb = compress(np.asarray(w).T, w_spec)
    return a_dbb, w_dbb


def dbb_gemm(a: np.ndarray, w_dbb: DBBTensor, accumulate_dtype=np.int64) -> np.ndarray:
    """GEMM with dense activations and DBB-compressed weights (S2TA-W mode).

    Walks compressed weight blocks the way the DP4M8 datapath does: for
    each stored non-zero weight, the positional bitmask steers the matching
    activation element into the MAC (the 8:1 mux of Fig. 6c). Never touches
    pruned weight positions.
    """
    a = np.asarray(a)
    m, k = a.shape
    n = w_dbb.num_rows
    bz = w_dbb.spec.block_size
    out = np.zeros((m, n), dtype=accumulate_dtype)
    a_wide = a.astype(accumulate_dtype)
    for col in range(n):
        for b, block in enumerate(w_dbb.row_blocks(col)):
            base = b * bz
            for pos, val in block.nonzero_pairs():
                idx = base + pos
                if idx >= k:
                    continue  # zero padding of the last block
                out[:, col] += a_wide[:, idx] * accumulate_dtype(val)
    return out


def joint_dbb_gemm(
    a_dbb: DBBTensor, w_dbb: DBBTensor, accumulate_dtype=np.int64
) -> np.ndarray:
    """GEMM with both operands DBB-compressed (S2TA-AW mode).

    Models the time-unrolled DP1M4 stream (Fig. 6e): activation non-zeros
    of each block are serialized; per element, a MAC fires only when the
    weight bitmask has a matching non-zero at the same expanded position
    (otherwise the cycle is clock-gated — the product would be zero).
    Bit-exact with the dense product of the decompressed operands.
    """
    if a_dbb.spec.block_size != w_dbb.spec.block_size:
        raise ValueError(
            f"operand block sizes differ: A BZ={a_dbb.spec.block_size}, "
            f"W BZ={w_dbb.spec.block_size}"
        )
    if a_dbb.blocks_per_row != w_dbb.blocks_per_row:
        raise ValueError(
            f"reduction lengths differ: A has {a_dbb.blocks_per_row} blocks, "
            f"W has {w_dbb.blocks_per_row}"
        )
    m = a_dbb.num_rows
    n = w_dbb.num_rows
    out = np.zeros((m, n), dtype=accumulate_dtype)
    for row in range(m):
        a_blocks = a_dbb.row_blocks(row)
        for col in range(n):
            w_blocks = w_dbb.row_blocks(col)
            acc = accumulate_dtype(0)
            for a_block, w_block in zip(a_blocks, w_blocks):
                match = a_block.mask & w_block.mask
                if not match:
                    continue
                a_vals = dict(a_block.nonzero_pairs())
                w_vals = dict(w_block.nonzero_pairs())
                pos = 0
                mask = match
                while mask:
                    if mask & 1:
                        acc += accumulate_dtype(a_vals[pos]) * accumulate_dtype(
                            w_vals[pos]
                        )
                    mask >>= 1
                    pos += 1
            out[row, col] = acc
    return out


def gemm_mac_count(m: int, k: int, n: int) -> int:
    """Dense MAC count of an ``(M, K) @ (K, N)`` GEMM."""
    return m * k * n
