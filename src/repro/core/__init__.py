"""Density Bound Block (DBB) sparsity core.

Implements the paper's primary data-format contribution (Sec. 3, Fig. 4/5):
blocked tensors with a bound on non-zeros per block, the positional bitmask
codec, static weight pruning (Sec. 4), dynamic activation pruning (Sec. 5.1)
and DBB-aware GEMM reference kernels used to validate the hardware models.
"""

from repro.core.dap import DAPResult, dap_prune, dap_prune_blocks, tune_layer_nnz
from repro.core.dbb import (
    DBBBlock,
    DBBSpec,
    DBBTensor,
    compress,
    compress_block,
    decompress,
    expand_block,
    popcount,
)
from repro.core.gemm import (
    clear_compress_cache,
    compress_cached,
    dbb_gemm,
    dense_gemm,
    joint_dbb_gemm,
)
from repro.core.pruning import (
    PruningSchedule,
    is_dbb_compliant,
    prune_weights_dbb,
)
from repro.core.serialize import pack, packed_size_bytes, unpack
from repro.core.sparsity import (
    block_nnz_histogram,
    density,
    random_dbb_tensor,
    random_unstructured,
)

__all__ = [
    "DBBSpec",
    "DBBBlock",
    "DBBTensor",
    "compress",
    "compress_block",
    "compress_cached",
    "clear_compress_cache",
    "decompress",
    "expand_block",
    "popcount",
    "DAPResult",
    "dap_prune",
    "dap_prune_blocks",
    "tune_layer_nnz",
    "prune_weights_dbb",
    "is_dbb_compliant",
    "PruningSchedule",
    "dense_gemm",
    "dbb_gemm",
    "joint_dbb_gemm",
    "density",
    "block_nnz_histogram",
    "random_unstructured",
    "random_dbb_tensor",
    "pack",
    "unpack",
    "packed_size_bytes",
]
