"""DBB byte-stream serialization — the SRAM storage format.

A compressed DBB tensor is stored in S2TA's buffers as, per block, the
``NNZ`` INT8 value bytes followed by the ``BZ/8`` positional-bitmask
bytes (Fig. 5). This module packs/unpacks that exact layout, so the
byte counts the energy model charges (``compressed_block_bytes``) are
the bytes actually produced here — asserted in the tests.

Stream layout::

    header: BZ (1 byte) | NNZ (1 byte) | rows (4) | cols (4)
    body:   row-major blocks of [values x NNZ][mask x ceil(BZ/8)]

Both directions are vectorized over the whole tensor: ``pack`` writes the
struct-of-arrays payload (``values``/``masks``) straight into the byte
matrix, and ``unpack`` reconstructs the arrays — including the per-slot
scatter ``positions`` — without materializing any per-block objects.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.dbb import DBBSpec, DBBTensor, popcount, _mask_dtype

__all__ = ["pack", "unpack", "packed_size_bytes"]

_HEADER = struct.Struct("<BBII")


def packed_size_bytes(spec: DBBSpec, rows: int, cols: int) -> int:
    """Exact byte size of the packed stream for a given tensor shape."""
    import math

    blocks_per_row = math.ceil(cols / spec.block_size)
    mask_bytes = math.ceil(spec.block_size / 8)
    block_bytes = spec.max_nnz + mask_bytes
    return _HEADER.size + rows * blocks_per_row * block_bytes


def pack(tensor: DBBTensor) -> bytes:
    """Serialize a DBB tensor to the SRAM byte layout."""
    spec = tensor.spec
    if spec.block_size > 64:
        raise ValueError(f"block_size {spec.block_size} exceeds the "
                         f"64-element format limit")
    mask_bytes = (spec.block_size + 7) // 8
    header = _HEADER.pack(spec.block_size, spec.max_nnz,
                          tensor.shape[0], tensor.shape[1])
    rows, n_blocks = tensor.masks.shape
    body = np.empty((rows, n_blocks, spec.max_nnz + mask_bytes),
                    dtype=np.uint8)
    body[..., :spec.max_nnz] = tensor.values.astype(np.int8).view(np.uint8)
    masks = tensor.masks.astype(np.uint64)
    for i in range(mask_bytes):
        body[..., spec.max_nnz + i] = (
            (masks >> np.uint64(8 * i)) & np.uint64(0xFF)
        ).astype(np.uint8)
    return header + body.tobytes()


def unpack(data: bytes) -> DBBTensor:
    """Inverse of :func:`pack` (round-trips exactly)."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated DBB stream: missing header")
    bz, nnz, rows, cols = _HEADER.unpack_from(data, 0)
    spec = DBBSpec(block_size=bz, max_nnz=nnz)
    expected = packed_size_bytes(spec, rows, cols)
    if len(data) != expected:
        raise ValueError(
            f"truncated DBB stream: got {len(data)} bytes, "
            f"expected {expected}"
        )
    mask_bytes = (bz + 7) // 8
    block_bytes = nnz + mask_bytes
    blocks_per_row = -(-cols // bz)
    raw = np.frombuffer(data, dtype=np.uint8, offset=_HEADER.size)
    body = raw.reshape(rows, blocks_per_row, block_bytes)
    values = body[..., :nnz].copy().view(np.int8)
    masks = np.zeros((rows, blocks_per_row), dtype=np.uint64)
    for i in range(mask_bytes):
        masks |= body[..., nnz + i].astype(np.uint64) << np.uint64(8 * i)
    if bz < 64 and masks.size and int(masks.max()) >> bz:
        raise ValueError(f"mask out of range for BZ={bz}")
    stored_nnz = popcount(masks)
    if stored_nnz.size and int(stored_nnz.max()) > nnz:
        raise ValueError(
            f"mask encodes more than the density bound {spec.ratio}"
        )
    # Stream slots beyond a block's non-zero count are format padding;
    # force them to zero so the scatter invariant holds even for byte
    # streams produced elsewhere.
    slot = np.arange(nnz)
    values[slot[None, None, :] >= stored_nnz[..., None]] = 0
    # Rebuild the scatter targets: set-bit positions first (ascending,
    # matching the stream's value order), unused slots at clear-bit
    # positions — all distinct, so decompression stays collision-free.
    bits = ((masks[..., None] >> np.arange(bz, dtype=np.uint64))
            & np.uint64(1)).astype(bool)
    order = np.argsort(~bits, axis=-1, kind="stable")
    positions = order[..., :nnz].astype(np.uint8)
    return DBBTensor(spec=spec, shape=(rows, cols), values=values,
                     masks=masks.astype(_mask_dtype(bz)),
                     positions=positions)
