"""DBB byte-stream serialization — the SRAM storage format.

A compressed DBB tensor is stored in S2TA's buffers as, per block, the
``NNZ`` INT8 value bytes followed by the ``BZ/8`` positional-bitmask
bytes (Fig. 5). This module packs/unpacks that exact layout, so the
byte counts the energy model charges (``compressed_block_bytes``) are
the bytes actually produced here — asserted in the tests.

Stream layout::

    header: BZ (1 byte) | NNZ (1 byte) | rows (4) | cols (4)
    body:   row-major blocks of [values x NNZ][mask x ceil(BZ/8)]
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.dbb import DBBBlock, DBBSpec, DBBTensor

__all__ = ["pack", "unpack", "packed_size_bytes"]

_HEADER = struct.Struct("<BBII")


def packed_size_bytes(spec: DBBSpec, rows: int, cols: int) -> int:
    """Exact byte size of the packed stream for a given tensor shape."""
    import math

    blocks_per_row = math.ceil(cols / spec.block_size)
    mask_bytes = math.ceil(spec.block_size / 8)
    block_bytes = spec.max_nnz + mask_bytes
    return _HEADER.size + rows * blocks_per_row * block_bytes


def pack(tensor: DBBTensor) -> bytes:
    """Serialize a DBB tensor to the SRAM byte layout."""
    spec = tensor.spec
    if spec.block_size > 64:
        raise ValueError(f"block_size {spec.block_size} exceeds the "
                         f"64-element format limit")
    mask_bytes = (spec.block_size + 7) // 8
    out = bytearray(_HEADER.pack(spec.block_size, spec.max_nnz,
                                 tensor.shape[0], tensor.shape[1]))
    for row in tensor.blocks:
        for block in row:
            values = np.asarray(block.values, dtype=np.int8)
            out += values.tobytes()
            out += int(block.mask).to_bytes(mask_bytes, "little")
    return bytes(out)


def unpack(data: bytes) -> DBBTensor:
    """Inverse of :func:`pack` (round-trips exactly)."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated DBB stream: missing header")
    bz, nnz, rows, cols = _HEADER.unpack_from(data, 0)
    spec = DBBSpec(block_size=bz, max_nnz=nnz)
    expected = packed_size_bytes(spec, rows, cols)
    if len(data) != expected:
        raise ValueError(
            f"truncated DBB stream: got {len(data)} bytes, "
            f"expected {expected}"
        )
    mask_bytes = (bz + 7) // 8
    block_bytes = nnz + mask_bytes
    blocks_per_row = -(-cols // bz)
    offset = _HEADER.size
    all_rows = []
    for _r in range(rows):
        row_blocks = []
        for _b in range(blocks_per_row):
            values = np.frombuffer(
                data, dtype=np.int8, count=nnz, offset=offset)
            mask = int.from_bytes(
                data[offset + nnz:offset + block_bytes], "little")
            row_blocks.append(
                DBBBlock(spec=spec, values=tuple(values.tolist()), mask=mask))
            offset += block_bytes
        all_rows.append(row_blocks)
    return DBBTensor(spec=spec, shape=(rows, cols), blocks=all_rows)
