"""Command-line interface.

Usage::

    python -m repro list-models
    python -m repro list-accelerators
    python -m repro run mobilenet_v1 --accelerator s2ta-aw --tech 16nm
    python -m repro experiment fig11
    python -m repro sweep --top 10
    python -m repro dse --shard 0/4 --out shard0.json
    python -m repro dse --merge shard0.json shard1.json ...
    python -m repro serve --port 8737
    python -m repro submit alexnet --accelerator s2ta-aw --quick --wait
    python -m repro jobs
    python -m repro warm --models alexnet --accelerators s2ta-aw,sparten

Every command prints plain text; ``experiment`` accepts any artifact id
from DESIGN.md's index (fig1, fig3, fig9a..fig9d, fig10, fig11, fig12,
tbl1..tbl5, sec7, ablation-unroll, ablation-bz, ablation-dap) plus
``xval`` (the functional-vs-analytic cross-validation table over the
whole comparison set — systolic family *and* the SparTen / Eyeriss v2 /
SCNN baselines — which exits non-zero when any model breaks its
agreement contract; ``--quick`` subsamples the layers, ``--seed`` picks
the operand synthesis), ``roofline`` (per-layer roofline placement from
the memory-hierarchy model) and ``roofline-bw`` (the DRAM-bandwidth
sensitivity sweep). The full-model artifacts (fig11, fig12) take
``--functional`` to run the honest functional-simulation tier instead
of the analytic fast path, ``--quick`` to subsample layers for a fast
check, and ``--seed`` for operand synthesis; fig11, fig12 and roofline
take ``--dram-bw <GB/s>`` to replace the default DRAM channel and
enforce the roofline wall on every layer; fig11, fig12 and ``run`` take
``--dram-pj-per-byte`` to re-price the reported off-chip component
(die-only totals are pinned and unaffected).

The functional tier runs on the parallel, memoized experiment engine
(:mod:`repro.eval.runner`): fig11/fig12 ``--functional`` and ``xval``
take ``--jobs N`` to fan the per-layer simulations out over N worker
processes (``--jobs 0`` = one per core; the ``REPRO_JOBS`` environment
variable sets the default) — results are bit-equal to a serial run at
the same seed. Simulated layer payloads are memoized in a
content-addressed on-disk cache keyed on (layer spec, accelerator
config, energy costs, memory-channel config, seed, code salt), so
re-runs and overlapping artifacts skip straight to finalization;
``--no-result-cache`` disables it for one invocation, and ``repro
cache stats|clear|prune`` manages the store (``$REPRO_CACHE_DIR``,
default ``~/.cache/repro/results``; ``REPRO_RESULT_CACHE=0`` opts out
globally). The ``xval`` contract gate always simulates cold — a cached
payload must never be what re-validates the agreement contract.

``repro dse`` scales the Sec. 7 sweep into a distributed, adaptive
design-space exploration (:mod:`repro.design.dse`): thousands of
``AxBxC_MxN`` x (A-DBB, SRAM, DRAM bandwidth, tech) points, evaluated
through the same parallel memoized runner, coarse-sampled then
adaptively refined around the (energy x cycles x area) Pareto frontier.
``--shard I/N`` + ``--out`` freeze one deterministic slice per host;
``--merge`` unions the shard artifacts and completes the refinement,
reproducing the unsharded artifact exactly.

Simulation as a service (:mod:`repro.serve`, see docs/serve.md):
``repro serve`` runs the long-lived front-end — a persistent SQLite
job queue ($REPRO_SERVE_DB, default ``~/.cache/repro/jobs.sqlite3``)
with crash recovery on startup, a priority scheduler that dedupes
identical requests through the result-cache fingerprints, ranks by
expected runtime and batches per-tier into single engine fan-outs, and
a stdlib HTTP/JSON API (``POST /jobs``, ``GET /jobs[/<id>]``,
``GET /metrics``, ``GET /healthz``). ``repro submit`` and ``repro
jobs`` are the HTTP clients; ``repro warm`` pre-populates the result
cache for a named (model, accelerator) list without a server. The
serve-side ``--jobs`` defaults to ``auto`` — serial vs pool picked per
batch from the miss count and the host's cores, so small-host runs
never pay pool startup for a handful of tasks.

Observability (:mod:`repro.obs`, see docs/observability.md) is wired
through every command and off by default: ``experiment`` and ``dse``
take ``--trace FILE`` (or ``REPRO_TRACE=FILE``) to record a Chrome
trace-event JSON — open it at https://ui.perfetto.dev — with one track
per pool worker, ``--metrics`` to append the runner/cache counter
table to the output, and ``--metrics-out FILE`` to dump the same
registry as JSON; ``repro trace summarize FILE [--top K]`` attributes
wall-clock to phases offline. ``-v/--verbose`` and ``-q/--quiet``
control the stdlib-logging channels everywhere (diagnostics on
stderr, payload on stdout).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

from repro.accel import (
    SCNN,
    S2TAAW,
    S2TAW,
    S2TAWA,
    DenseSA,
    EyerissV2,
    SmtSA,
    SparTen,
    ZvcgSA,
)
from repro.models.zoo import MODEL_SPECS, get_spec

__all__ = ["main", "build_parser"]

ACCELERATORS: Dict[str, Callable] = {
    "sa": DenseSA,
    "sa-zvcg": ZvcgSA,
    "sa-smt": SmtSA,
    "s2ta-w": S2TAW,
    "s2ta-aw": S2TAAW,
    "s2ta-wa": S2TAWA,
    "scnn": SCNN,
    "sparten": SparTen,
    "eyeriss-v2": EyerissV2,
}


#: Artifacts whose runners take the functional-tier keywords
#: (functional=, quick=, seed=).
FUNCTIONAL_ARTIFACTS = ("fig11", "fig12")

#: Artifacts whose runners take a DRAM-bandwidth override (dram_gbps=).
DRAM_BW_ARTIFACTS = ("fig11", "fig12", "roofline")

#: Artifacts whose runners price the off-chip component and take a
#: DRAM-energy override (dram_pj_per_byte=).
DRAM_PJ_ARTIFACTS = ("fig11", "fig12")

#: Artifacts that route layer simulations through the parallel,
#: memoized runner (jobs=, result_cache=).
PARALLEL_ARTIFACTS = ("fig11", "fig12", "xval")


def _experiments() -> Dict[str, Callable]:
    from repro.eval import (
        ablation_block_size,
        ablation_dap_stages,
        ablation_unroll_axis,
        dram_bw_sensitivity,
        fig1_energy_breakdown,
        fig3_smt_overhead,
        fig9_microbench,
        fig10_variant_breakdown,
        fig11_full_models,
        fig12_alexnet_per_layer,
        roofline_analysis,
        sec7_design_space,
        tbl1_buffer_per_mac,
        tbl2_s2ta_breakdown,
        tbl3_accuracy,
        tbl4_comparison,
        tbl5_summary,
        xval_functional_vs_analytic,
    )

    return {
        "fig1": fig1_energy_breakdown,
        "fig3": fig3_smt_overhead,
        "fig9a": lambda: fig9_microbench("a"),
        "fig9b": lambda: fig9_microbench("b"),
        "fig9c": lambda: fig9_microbench("c"),
        "fig9d": lambda: fig9_microbench("d"),
        "fig10": fig10_variant_breakdown,
        "fig11": fig11_full_models,
        "fig12": fig12_alexnet_per_layer,
        "xval": xval_functional_vs_analytic,
        "roofline": roofline_analysis,
        "roofline-bw": dram_bw_sensitivity,
        "tbl1": tbl1_buffer_per_mac,
        "tbl2": tbl2_s2ta_breakdown,
        "tbl3": lambda: tbl3_accuracy(quick=True),
        "tbl4-16nm": lambda: tbl4_comparison("16nm"),
        "tbl4-65nm": lambda: tbl4_comparison("65nm"),
        "tbl5": tbl5_summary,
        "sec7": sec7_design_space,
        "ablation-unroll": ablation_unroll_axis,
        "ablation-bz": ablation_block_size,
        "ablation-dap": ablation_dap_stages,
    }


def cmd_list_models(_args) -> str:
    lines = ["available model specs:"]
    for name in sorted(MODEL_SPECS):
        spec = get_spec(name)
        lines.append(f"  {name:<14} {spec.dataset:<10} "
                     f"{len(spec.layers):>3} layers  "
                     f"{spec.total_macs / 1e9:6.2f} G MACs  ({spec.notes})")
    return "\n".join(lines)


def cmd_list_accelerators(_args) -> str:
    lines = ["available accelerators:"]
    for key, factory in ACCELERATORS.items():
        accel = factory()
        lines.append(f"  {key:<12} {accel.name:<12} "
                     f"{accel.hardware_macs:>5} MACs  "
                     f"{accel.area_mm2():5.2f} mm^2 ({accel.tech})")
    return "\n".join(lines)


def _costs_from_args(args):
    from repro.eval.experiments import _costs

    if getattr(args, "dram_pj_per_byte", None) is not None \
            and args.dram_pj_per_byte <= 0:
        raise SystemExit("--dram-pj-per-byte must be positive")
    return _costs(getattr(args, "dram_pj_per_byte", None))


def cmd_run(args) -> str:
    spec = get_spec(args.model)
    factory = ACCELERATORS[args.accelerator]
    try:
        accel = factory(tech=args.tech, costs=_costs_from_args(args))
    except KeyError:
        raise SystemExit(f"unknown tech {args.tech!r}")
    run = accel.run_model(spec, conv_only=args.conv_only)
    lines = [
        f"{spec.name} on {accel.name} ({accel.tech}):",
        f"  cycles     : {run.total_cycles:,}",
        f"  runtime    : {run.runtime_s * 1e3:.3f} ms "
        f"({run.inferences_per_second:,.0f} inf/s)",
        f"  energy     : {run.energy_uj:,.1f} uJ "
        f"({run.inferences_per_joule:,.0f} inf/J)",
        f"  efficiency : {run.effective_tops_per_watt:.2f} TOPS/W effective",
    ]
    if args.per_layer:
        lines.append(f"  {'layer':<16} {'cycles':>12} {'uJ':>9} {'bound':>7}")
        for r in run.layer_results:
            bound = "memory" if r.memory_bound else "compute"
            lines.append(f"  {r.layer.name:<16} {r.cycles:>12,} "
                         f"{r.energy_uj:>9.1f} {bound:>7}")
    return "\n".join(lines)


def cmd_experiment(args) -> str:
    from repro.eval.experiments import QUICK_MAX_M

    experiments = _experiments()
    functional_requested = (args.functional or args.quick
                            or args.seed is not None)
    seed = 0 if args.seed is None else args.seed
    if args.artifact == "all":
        if (functional_requested or args.dram_bw is not None
                or args.dram_pj_per_byte is not None
                or args.jobs is not None):
            raise SystemExit(
                "--functional/--quick/--seed/--jobs/--dram-bw/"
                "--dram-pj-per-byte "
                "apply to a single artifact, not 'all' "
                f"({', '.join(FUNCTIONAL_ARTIFACTS)} "
                "take the functional flags; "
                f"{', '.join(DRAM_BW_ARTIFACTS)} take --dram-bw; "
                f"{', '.join(DRAM_PJ_ARTIFACTS)} take --dram-pj-per-byte; "
                f"{', '.join(PARALLEL_ARTIFACTS)} take --jobs; "
                "xval takes --seed/--quick)")
        return "\n\n".join(run().render()
                           for name, run in experiments.items())
    try:
        runner = experiments[args.artifact]
    except KeyError:
        raise SystemExit(
            f"unknown artifact {args.artifact!r}; choose from "
            f"{', '.join(sorted(experiments))} or 'all'"
        )
    if args.dram_bw is not None and args.artifact not in DRAM_BW_ARTIFACTS:
        raise SystemExit(
            f"--dram-bw is only supported by "
            f"{', '.join(DRAM_BW_ARTIFACTS)}, not {args.artifact!r}")
    if args.dram_bw is not None and args.dram_bw <= 0:
        raise SystemExit("--dram-bw must be a positive bandwidth in GB/s")
    if args.dram_pj_per_byte is not None \
            and args.artifact not in DRAM_PJ_ARTIFACTS:
        raise SystemExit(
            f"--dram-pj-per-byte is only supported by "
            f"{', '.join(DRAM_PJ_ARTIFACTS)}, not {args.artifact!r}")
    _costs_from_args(args)  # shared --dram-pj-per-byte validation
    if args.jobs is not None and args.artifact not in PARALLEL_ARTIFACTS:
        raise SystemExit(
            f"--jobs is only supported by "
            f"{', '.join(PARALLEL_ARTIFACTS)}, not {args.artifact!r}")
    if args.jobs is not None and args.jobs < 0:
        raise SystemExit("--jobs must be >= 0 (0 = one worker per core)")
    result_cache = None if args.no_result_cache else _default_result_cache()
    if args.artifact in FUNCTIONAL_ARTIFACTS:
        if not args.functional and (args.quick or args.seed is not None
                                    or args.jobs is not None):
            raise SystemExit(
                "--quick/--seed/--jobs tune the functional tier; pass "
                "--functional as well")
        return runner(functional=args.functional, quick=args.quick,
                      seed=seed, dram_gbps=args.dram_bw,
                      dram_pj_per_byte=args.dram_pj_per_byte,
                      jobs=args.jobs, result_cache=result_cache).render()
    if args.artifact == "xval":
        if args.functional:
            raise SystemExit("xval always runs both tiers; it takes "
                             "--seed and --quick but not --functional")
        # The contract gate always simulates cold: serving a stale
        # cached payload (e.g. after a simulator change under an
        # unbumped CODE_VERSION salt) would make the gate vacuously
        # re-validate yesterday's results.
        result = runner(seed=seed,
                        max_m=QUICK_MAX_M if args.quick else None,
                        jobs=args.jobs, result_cache=None)
        if result.failures:
            # Non-zero exit: a model broke its agreement contract.
            raise SystemExit(result.render())
        return result.render()
    if functional_requested:
        raise SystemExit(
            f"--functional/--quick/--seed are only supported by "
            f"{', '.join(FUNCTIONAL_ARTIFACTS)} and xval, "
            f"not {args.artifact!r}")
    if args.artifact == "roofline":
        return runner(dram_gbps=args.dram_bw).render()
    return runner().render()


def cmd_sweep(args) -> str:
    from repro.eval import sec7_design_space

    return sec7_design_space(top=args.top).render()


_STYLE_FLAGS = {"tu": True, "dp": False}


def _parse_axis(text: str, cast, flag: str) -> tuple:
    values = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(cast(token))
        except (ValueError, KeyError):
            raise SystemExit(
                f"{flag}: cannot parse {token!r}") from None
    if not values:
        raise SystemExit(f"{flag} needs at least one value")
    return tuple(values)


def _dse_axes(args):
    from repro.design.dse import DSEAxes

    try:
        return DSEAxes(
            styles=_parse_axis(args.styles,
                               lambda t: _STYLE_FLAGS[t], "--styles"),
            weight_nnz=_parse_axis(args.weight_nnz, int, "--weight-nnz"),
            a_nnz=_parse_axis(args.a_nnz, int, "--a-nnz"),
            sram_mb=_parse_axis(args.sram_mb, float, "--sram-mb"),
            dram_gbps=_parse_axis(
                args.dram_bw,
                lambda t: None if t == "def" else float(t), "--dram-bw"),
            techs=_parse_axis(args.tech, str, "--tech"),
        )
    except ValueError as exc:
        raise SystemExit(f"bad DSE axes: {exc}") from None


def cmd_dse(args) -> str:
    """Run (or merge) the adaptive design-space exploration."""
    import json as _json
    import pathlib

    from repro.design.dse import (
        merge_artifacts,
        parse_shard,
        render_artifact,
        run_dse,
    )
    from repro.eval.experiments import QUICK_MAX_M

    if args.jobs is not None and args.jobs < 0:
        raise SystemExit("--jobs must be >= 0 (0 = one worker per core)")
    if args.quick and args.fidelity != "functional":
        raise SystemExit("--quick subsamples the cycle simulator; pass "
                         "--fidelity functional as well")
    if args.resume is not None and (args.merge or args.shard):
        raise SystemExit("--resume restores a checkpointed run (its own "
                         "shard included); it does not combine with "
                         "--merge or --shard")
    result_cache = None if args.no_result_cache else _default_result_cache()
    if args.merge:
        if args.shard is not None:
            raise SystemExit("--merge consumes shard artifacts; it does "
                             "not take --shard itself")
        artifacts = []
        for path in args.merge:
            try:
                artifacts.append(_json.loads(
                    pathlib.Path(path).read_text()))
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot read shard artifact "
                                 f"{path}: {exc}") from None
        try:
            artifact = merge_artifacts(artifacts, jobs=args.jobs,
                                       result_cache=result_cache)
        except ValueError as exc:
            raise SystemExit(f"cannot merge: {exc}") from None
    else:
        shard = None
        if args.shard is not None:
            try:
                shard = parse_shard(args.shard)
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
        try:
            artifact = run_dse(
                _dse_axes(args),
                coarse_stride=args.coarse_stride,
                stable_rounds=args.stable_rounds,
                fidelity=args.fidelity,
                seed=0 if args.seed is None else args.seed,
                max_m=QUICK_MAX_M if args.quick else None,
                jobs=args.jobs,
                result_cache=result_cache,
                shard=shard,
                checkpoint=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
    lines = []
    if args.out:
        pathlib.Path(args.out).write_text(
            _json.dumps(artifact, indent=2, sort_keys=True) + "\n")
        lines.append(f"wrote {artifact['phase']} artifact "
                     f"({len(artifact['evaluations'])} evaluations) "
                     f"to {args.out}")
    lines.append(render_artifact(artifact, top=args.top).render())
    return "\n".join(lines)


def _default_result_cache():
    from repro.eval.resultcache import default_result_cache

    return default_result_cache()


def cmd_cache(args) -> str:
    """Manage the on-disk functional-result cache."""
    from repro.eval.resultcache import ResultCache, default_cache_dir

    directory = args.dir if args.dir is not None else default_cache_dir()
    cache = ResultCache(directory)
    if args.action == "stats":
        stats = cache.stats()
        # Lifetime hit/miss totals come from the stats.meta sidecar the
        # runner folds every batch's counts into — they survive process
        # (and pool-worker) exit, unlike the old in-memory counters.
        return "\n".join([
            f"result cache at {directory}:",
            f"  entries : {stats['entries']:,}",
            f"  bytes   : {stats['bytes']:,}",
            f"  hits    : {stats['lifetime_hits']:,} (lifetime)",
            f"  misses  : {stats['lifetime_misses']:,} (lifetime)",
            f"  corrupt : {stats['lifetime_corrupt']:,} (lifetime; "
            f"quarantined under corrupt/)",
        ])
    if args.action == "clear":
        removed = cache.clear()
        return f"cleared {removed} cached result(s) from {directory}"
    # prune: evict oldest entries beyond the size cap
    max_bytes = int(args.max_mb * 1024 * 1024)
    if max_bytes <= 0:
        raise SystemExit("--max-mb must be at least one byte's worth")
    removed = cache.prune(max_bytes)
    stats = cache.stats()
    return (f"pruned {removed} entr{'y' if removed == 1 else 'ies'}; "
            f"{stats['entries']:,} remain ({stats['bytes']:,} bytes)")


def _parse_jobs_arg(text):
    """Serve-side ``--jobs``: ``auto`` (the default) or an int
    (``0`` = one per core), mirroring the engine's resolver."""
    value = text.strip().lower()
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise SystemExit(
            f"--jobs must be an integer (0 = one per core) or 'auto', "
            f"got {text!r}") from None
    if jobs < 0:
        raise SystemExit("--jobs must be >= 0 (0 = one worker per core)")
    return jobs


def _serve_base_url(args) -> str:
    return f"http://{args.host}:{args.port}"


def cmd_serve(args) -> str:
    """Run the simulation service (or its smoke self-test)."""
    import tempfile
    import time as _time

    from repro.serve import ServeService, default_db_path, run_smoke

    jobs = _parse_jobs_arg(args.jobs)
    result_cache = None if args.no_result_cache else _default_result_cache()
    if args.smoke:
        # Self-test on a throwaway DB unless one was named explicitly —
        # the smoke run must never mingle with a production queue.
        db = args.db or os.path.join(
            tempfile.mkdtemp(prefix="repro-serve-smoke-"), "jobs.sqlite3")
        try:
            return run_smoke(db, result_cache=result_cache)
        except (RuntimeError, TimeoutError) as exc:
            raise SystemExit(f"serve smoke FAILED: {exc}") from None
    if args.lease_s <= 0:
        raise SystemExit("--lease-s must be positive")
    db = args.db if args.db is not None else default_db_path()
    service = ServeService(
        db, host=args.host, port=args.port, workers=args.workers,
        jobs=jobs, result_cache=result_cache,
        batch_limit=args.batch_limit, poll_s=args.poll_s,
        max_pending=args.max_pending, lease_s=args.lease_s)
    requeued, quarantined = service.recovered
    service.start()
    out = obs_logs.output_logger()
    out.info("serving on %s (db=%s, workers=%d, jobs=%s)",
             service.base_url, service.db_path, service.workers, jobs)
    if requeued or quarantined:
        out.info("recovery: re-queued %d expired job(s), quarantined "
                 "%d out of attempts", len(requeued), len(quarantined))
    try:
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return "serve: shut down"


#: ``repro submit --wait`` exits with this when the job is still in
#: flight at the deadline — distinguishable from a failed job (1).
EXIT_WAIT_TIMEOUT = 4


def cmd_submit(args) -> str:
    """Submit one job to a running service over HTTP."""
    from repro.serve import submit_job, wait_for_job

    request = {
        "model": args.model,
        "accelerator": args.accelerator,
        "tier": args.tier,
        "conv_only": not args.all_layers,
        "quick": args.quick,
        "seed": args.seed,
        "priority": args.priority,
    }
    if args.tech is not None:
        request["tech"] = args.tech
    base = _serve_base_url(args)
    try:
        admitted = submit_job(base, request)
    except (RuntimeError, OSError) as exc:
        raise SystemExit(f"submit to {base} failed: {exc}") from None
    verb = "deduped onto job" if admitted["deduped"] else "queued as job"
    lines = [f"{verb} {admitted['id']} (state {admitted['state']})"]
    if args.wait:
        try:
            job = wait_for_job(base, admitted["id"],
                               timeout_s=args.timeout)
        except TimeoutError as exc:
            # Distinct exit code so wrappers can tell "still running,
            # deadline elapsed" (retryable: poll again / re---wait)
            # from a job that actually failed.
            print(str(exc), file=sys.stderr)
            raise SystemExit(EXIT_WAIT_TIMEOUT) from None
        except (RuntimeError, OSError) as exc:
            raise SystemExit(str(exc)) from None
        if job["state"] != "done":
            raise SystemExit(
                f"job {job['id']} {job['state']}: {job.get('error')}")
        result = job["result"]
        lines += [
            f"{result['model']} on {result['accelerator']} "
            f"({result['tech']}):",
            f"  cycles : {result['total_cycles']:,}",
            f"  energy : {result['energy_uj']:,.1f} uJ",
            f"  layers : {len(result['layers'])}",
        ]
    return "\n".join(lines)


def cmd_jobs(args) -> str:
    """List queue contents — over HTTP, or straight off a DB file
    (``--db``; works while no server is up, e.g. post-crash triage)."""
    if args.quarantined:
        if args.state not in (None, "quarantined"):
            raise SystemExit("--quarantined conflicts with "
                             f"--state {args.state}")
        args.state = "quarantined"
    if args.db is not None:
        from repro.serve import JobStore

        with JobStore(args.db) as store:
            try:
                jobs = [job.to_dict() for job in
                        store.list_jobs(state=args.state,
                                        limit=args.limit)]
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
            counts = store.counts()
    else:
        from repro.serve import http_json

        base = _serve_base_url(args)
        query = f"limit={args.limit}"
        if args.state:
            query += f"&state={args.state}"
        try:
            status, body = http_json("GET", f"{base}/jobs?{query}")
            _, health = http_json("GET", f"{base}/healthz")
        except OSError as exc:
            raise SystemExit(f"cannot reach {base}: {exc}") from None
        if status != 200:
            raise SystemExit(f"jobs listing failed ({status}): "
                             f"{body.get('error', body)}")
        jobs = body["jobs"]
        counts = health["counts"]
    lines = [("queue: "
              + "  ".join(f"{state}={counts.get(state, 0)}"
                          for state in ("pending", "running", "done",
                                        "failed", "quarantined")))]
    if jobs:
        lines.append(f"  {'id':>5} {'state':<11} {'prio':>4} {'att':>3} "
                     f"{'model':<14} {'accel':<10} {'tier':<10}")
    for job in jobs:
        req = job["request"]
        lines.append(
            f"  {job['id']:>5} {job['state']:<11} {job['priority']:>4} "
            f"{job['attempts']:>3} {req.get('model', '?'):<14} "
            f"{req.get('accelerator', '?'):<10} "
            f"{req.get('tier', '?'):<10}")
        if job["state"] == "quarantined" and job.get("error"):
            lines.append(f"        ^ {job['error']}")
    return "\n".join(lines)


def cmd_warm(args) -> str:
    """Pre-populate the result cache for (model, accelerator) pairs."""
    import time as _time

    from repro.serve import parse_request, run_requests

    cache = _default_result_cache()
    if cache is None:
        raise SystemExit(
            "warm needs the result cache; unset REPRO_RESULT_CACHE=0")
    jobs = _parse_jobs_arg(args.jobs)
    models = [t.strip() for t in args.models.split(",") if t.strip()]
    accels = [t.strip() for t in args.accelerators.split(",")
              if t.strip()]
    if not models or not accels:
        raise SystemExit("warm needs at least one model and one "
                         "accelerator")
    requests = []
    for model in models:
        for accel in accels:
            data = {"model": model, "accelerator": accel,
                    "tier": args.tier, "quick": args.quick,
                    "seed": args.seed}
            try:
                requests.append(parse_request(data))
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
    before = cache.stats()
    start = _time.perf_counter()
    results = run_requests(requests, jobs=jobs, result_cache=cache)
    elapsed = _time.perf_counter() - start
    after = cache.stats()
    lines = []
    for request, result in zip(requests, results):
        lines.append(f"  {result['model']:<14} {result['accelerator']:<10} "
                     f"{result['total_cycles']:>14,} cycles "
                     f"{result['energy_uj']:>12,.1f} uJ")
    payloads = sum(len(r["layers"]) for r in results)
    lines.append(
        f"warmed {len(requests)} request(s) / {payloads} layer "
        f"payload(s) in {elapsed:.2f} s — cache +{after['puts'] - before['puts']} "
        f"put(s), +{after['hits'] - before['hits']} hit(s), "
        f"{after['entries']:,} entries ({after['bytes']:,} bytes)")
    return "\n".join(lines)


def cmd_trace(args) -> str:
    """Analyze a merged Chrome-trace artifact offline."""
    from repro.obs.summarize import render_summary, summarize_trace

    if args.top < 1:
        raise SystemExit("--top must be at least 1")
    try:
        summary = summarize_trace(args.file, top=args.top)
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"cannot summarize {args.file}: {exc}") from None
    return render_summary(summary)


def _add_verbosity_flags(sub_parser) -> None:
    """``-v``/``-q`` on a subcommand (subparsers only — a flag that is
    also on the main parser would have its parsed value clobbered by
    the subparser's default)."""
    sub_parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="verbose diagnostics on stderr (DEBUG level)")
    sub_parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="suppress output below errors (including the result "
             "payload on stdout)")


def _add_obs_flags(sub_parser) -> None:
    """``--trace``/``--metrics`` on the engine-backed subcommands."""
    sub_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON of this run (per-worker "
             "tracks; open in Perfetto / chrome://tracing; summarize "
             "with 'repro trace summarize FILE'). Default: $"
             + obs_trace.TRACE_ENV)
    sub_parser.add_argument(
        "--metrics", action="store_true",
        help="append the engine metrics summary (runner telemetry, "
             "cache hit/miss/eviction aggregates incl. pool workers) "
             "to the output")
    sub_parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="dump the engine metrics as JSON next to the artifact")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S2TA reproduction: models, accelerators, experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_models = sub.add_parser("list-models")
    list_models.set_defaults(func=cmd_list_models)
    list_accels = sub.add_parser("list-accelerators")
    list_accels.set_defaults(func=cmd_list_accelerators)

    run = sub.add_parser("run", help="run a model on an accelerator")
    run.add_argument("model", choices=sorted(MODEL_SPECS))
    run.add_argument("--accelerator", default="s2ta-aw",
                     choices=sorted(ACCELERATORS))
    run.add_argument("--tech", default="16nm")
    run.add_argument("--conv-only", action="store_true")
    run.add_argument("--per-layer", action="store_true")
    run.add_argument("--dram-pj-per-byte", type=float, default=None,
                     metavar="PJ",
                     help="off-chip DRAM interface energy per byte "
                          "(prices the reported dram component; die-only "
                          "totals are unaffected)")
    run.set_defaults(func=cmd_run)

    exp = sub.add_parser("experiment", help="reproduce a paper artifact")
    exp.add_argument("artifact")
    exp.add_argument("--functional", action="store_true",
                     help="run the functional-simulation tier "
                          "(fig11/fig12: concrete INT8 GEMMs on the "
                          "cycle simulator)")
    exp.add_argument("--quick", action="store_true",
                     help="subsample layers for a fast functional check "
                          "(fig11/fig12 with --functional; xval)")
    exp.add_argument("--seed", type=int, default=None,
                     help="operand-synthesis seed for the functional tier")
    exp.add_argument("--dram-bw", type=float, default=None,
                     metavar="GB/s",
                     help="DRAM channel bandwidth override (fig11/fig12/"
                          "roofline); enforces the roofline wall on "
                          "every layer")
    exp.add_argument("--dram-pj-per-byte", type=float, default=None,
                     metavar="PJ",
                     help="off-chip DRAM interface energy per byte "
                          "(fig11/fig12; die-only totals unaffected)")
    exp.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for the functional tier "
                          "(fig11/fig12 with --functional; xval); 0 = "
                          "one per core; default: $REPRO_JOBS or serial. "
                          "Results are bit-equal to serial at the same "
                          "seed")
    exp.add_argument("--no-result-cache", action="store_true",
                     help="skip the on-disk functional-result cache for "
                          "this invocation (see 'repro cache')")
    _add_obs_flags(exp)
    _add_verbosity_flags(exp)
    exp.set_defaults(func=cmd_experiment)

    sweep = sub.add_parser("sweep", help="Sec. 7 design-space sweep")
    sweep.add_argument("--top", type=int, default=8)
    sweep.set_defaults(func=cmd_sweep)

    dse = sub.add_parser(
        "dse",
        help="distributed, adaptive design-space exploration",
        description="Enumerate the full AxBxC_MxN x (A-DBB, SRAM, DRAM "
                    "bandwidth, tech) keyspace, evaluate points through "
                    "the parallel memoized runner, and adaptively refine "
                    "around the (energy x cycles x area) Pareto frontier "
                    "until it is stable. --shard I/N evaluates one "
                    "deterministic slice of the coarse sample and "
                    "freezes it to --out; --merge unions the per-shard "
                    "artifacts and completes the refinement, producing "
                    "output identical to an unsharded run.")
    dse.add_argument("--styles", default="tu,dp",
                     help="datapath styles to sweep: comma list of "
                          "tu (time-unrolled) / dp (dot-product) "
                          "(default tu,dp)")
    dse.add_argument("--weight-nnz", default="2,4,8", metavar="B,...",
                     help="DBB weight bounds B to sweep (default 2,4,8)")
    dse.add_argument("--a-nnz", default="2,3,4,8", metavar="A,...",
                     help="per-layer activation-DBB bounds to sweep "
                          "(default 2,3,4,8)")
    dse.add_argument("--sram-mb", default="1.25,2.5,5.0", metavar="MB,...",
                     help="on-chip SRAM sizes to sweep "
                          "(default 1.25,2.5,5.0)")
    dse.add_argument("--dram-bw", default="def", metavar="GB/s,...",
                     help="DRAM bandwidths to sweep; 'def' = the default "
                          "channel (default def)")
    dse.add_argument("--tech", default="16nm", metavar="NODE,...",
                     help="technology nodes to sweep (default 16nm)")
    dse.add_argument("--coarse-stride", type=int, default=4, metavar="K",
                     help="coarse phase samples every K-th point "
                          "(default 4); refinement densifies around the "
                          "frontier")
    dse.add_argument("--stable-rounds", type=int, default=2, metavar="K",
                     help="stop once the frontier survives K consecutive "
                          "refinement rounds (default 2)")
    dse.add_argument("--fidelity", default="analytic",
                     choices=("analytic", "functional"),
                     help="evaluation tier: closed-form analytic "
                          "(default; sub-ms per point) or the cycle "
                          "simulator")
    dse.add_argument("--seed", type=int, default=None,
                     help="operand-synthesis seed (functional fidelity)")
    dse.add_argument("--quick", action="store_true",
                     help="subsample GEMM rows for a fast functional "
                          "sweep (requires --fidelity functional)")
    dse.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for the evaluation fan-out; "
                          "0 = one per core; default: $REPRO_JOBS or "
                          "serial")
    dse.add_argument("--shard", default=None, metavar="I/N",
                     help="evaluate deterministic slice I of N of the "
                          "coarse sample and emit a partial artifact "
                          "(combine with --out, then --merge)")
    dse.add_argument("--merge", nargs="+", default=None, metavar="JSON",
                     help="merge per-shard artifacts and run the "
                          "refinement to completion")
    dse.add_argument("--checkpoint", default=None, metavar="JSON",
                     help="atomically snapshot progress here every "
                          "--checkpoint-every coarse points and every "
                          "refinement round; resume after a crash with "
                          "--resume")
    dse.add_argument("--checkpoint-every", type=int, default=256,
                     metavar="N",
                     help="coarse points between checkpoints "
                          "(default 256)")
    dse.add_argument("--resume", default=None, metavar="JSON",
                     help="restore a --checkpoint snapshot and continue "
                          "(run configuration comes from the snapshot; "
                          "the final artifact equals an uninterrupted "
                          "run's)")
    dse.add_argument("--out", default=None, metavar="JSON",
                     help="write the artifact (evaluations + frontier + "
                          "rounds) as JSON")
    dse.add_argument("--top", type=int, default=12,
                     help="table rows to print (default 12)")
    dse.add_argument("--no-result-cache", action="store_true",
                     help="skip the on-disk result cache for this "
                          "invocation (see 'repro cache')")
    _add_obs_flags(dse)
    _add_verbosity_flags(dse)
    dse.set_defaults(func=cmd_dse)

    cache = sub.add_parser(
        "cache",
        help="manage the on-disk functional-result cache",
        description="The functional tier memoizes simulated layer "
                    "payloads in a content-addressed on-disk cache "
                    "(key: layer spec + accelerator config + energy "
                    "costs + memory-channel config + seed + code "
                    "salt), so re-runs and overlapping experiments "
                    "skip straight to finalization. Location: "
                    "$REPRO_CACHE_DIR, default ~/.cache/repro/results.")
    cache.add_argument("action", choices=("stats", "clear", "prune"))
    cache.add_argument("--dir", default=None,
                       help="cache directory override")
    cache.add_argument("--max-mb", type=float, default=256,
                       help="size cap for 'prune' (MB; oldest entries "
                            "evicted first; default 256)")
    _add_verbosity_flags(cache)
    cache.set_defaults(func=cmd_cache)

    serve = sub.add_parser(
        "serve",
        help="run the simulation service (HTTP API + job queue)",
        description="Long-running simulation-as-a-service front-end "
                    "over the parallel memoized engine: a persistent "
                    "SQLite job queue with crash recovery on startup, "
                    "a priority scheduler (request dedupe through the "
                    "result-cache fingerprints, expected-runtime "
                    "ranking, per-tier batching into single engine "
                    "fan-outs) and a JSON API: POST /jobs, "
                    "GET /jobs[/<id>], GET /metrics, GET /healthz. "
                    "See docs/serve.md.")
    serve.add_argument("--db", default=None, metavar="PATH",
                       help="SQLite job-store path (default: "
                            "$REPRO_SERVE_DB or "
                            "~/.cache/repro/jobs.sqlite3)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8737,
                       help="listen port; 0 = ephemeral (default 8737)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="scheduler threads draining the queue; 0 = "
                            "admission-only (jobs queue but nothing "
                            "executes — e.g. external worker processes "
                            "share the DB) (default 1)")
    serve.add_argument("--jobs", default="auto", metavar="N|auto",
                       help="engine worker processes per batch; 'auto' "
                            "(default) picks serial vs pool from the "
                            "batch's miss count and the host's cores; "
                            "0 = one per core")
    serve.add_argument("--batch-limit", type=int, default=16,
                       metavar="N",
                       help="max jobs claimed per scheduler pass "
                            "(default 16)")
    serve.add_argument("--poll-s", type=float, default=0.1,
                       metavar="S",
                       help="idle-queue poll interval (default 0.1)")
    serve.add_argument("--max-pending", type=int, default=None,
                       metavar="N",
                       help="admission control: reject submissions "
                            "(HTTP 503) while the pending backlog is "
                            "at N (default: unbounded)")
    serve.add_argument("--lease-s", type=float, default=30.0,
                       metavar="S",
                       help="running-job lease duration; a worker that "
                            "stops heartbeating for S seconds forfeits "
                            "the job (re-queued with backoff, or "
                            "quarantined out of attempts) (default 30)")
    serve.add_argument("--no-result-cache", action="store_true",
                       help="serve without the on-disk result cache "
                            "(every job re-simulates)")
    serve.add_argument("--smoke", action="store_true",
                       help="boot on an ephemeral port + throwaway DB, "
                            "run the end-to-end dedupe/metrics "
                            "self-test, exit non-zero on failure")
    _add_verbosity_flags(serve)
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a simulation job to a running service",
        description="POST one (model, accelerator) request to a repro "
                    "serve instance. Identical requests dedupe onto "
                    "the existing job (same id, one simulation).")
    submit.add_argument("model", choices=sorted(MODEL_SPECS))
    submit.add_argument("--accelerator", default="s2ta-aw",
                        choices=sorted(ACCELERATORS))
    submit.add_argument("--tech", default=None,
                        help="technology node (default: the "
                             "accelerator's own)")
    submit.add_argument("--tier", default="functional",
                        choices=("functional", "analytic"),
                        help="fidelity tier (default functional)")
    submit.add_argument("--all-layers", action="store_true",
                        help="simulate every layer (default: conv "
                             "layers only, like fig11/fig12)")
    submit.add_argument("--quick", action="store_true",
                        help="subsample output rows like the "
                             "experiment --quick mode")
    submit.add_argument("--seed", type=int, default=0,
                        help="operand-synthesis seed (functional tier)")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority; higher runs first "
                             "(default 0)")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8737)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print "
                             "its result summary")
    submit.add_argument("--timeout", type=float, default=600,
                        metavar="S",
                        help="--wait deadline in seconds (default 600); "
                             f"exits {EXIT_WAIT_TIMEOUT} if the job is "
                             "still in flight at the deadline")
    _add_verbosity_flags(submit)
    submit.set_defaults(func=cmd_submit)

    jobs = sub.add_parser(
        "jobs",
        help="list the service's job queue",
        description="Queue state summary plus the most recent jobs — "
                    "over HTTP from a running service, or directly "
                    "off the SQLite file with --db (works with no "
                    "server up, e.g. post-crash triage).")
    jobs.add_argument("--state", default=None,
                      choices=("pending", "running", "done", "failed",
                               "quarantined"),
                      help="only jobs in this state")
    jobs.add_argument("--quarantined", action="store_true",
                      help="shorthand for --state quarantined (jobs "
                           "that repeatedly took a worker down; they "
                           "never run again without manual action)")
    jobs.add_argument("--limit", type=int, default=20,
                      help="rows to show, newest first (default 20)")
    jobs.add_argument("--host", default="127.0.0.1")
    jobs.add_argument("--port", type=int, default=8737)
    jobs.add_argument("--db", default=None, metavar="PATH",
                      help="read the job store file directly instead "
                           "of over HTTP")
    _add_verbosity_flags(jobs)
    jobs.set_defaults(func=cmd_jobs)

    warm = sub.add_parser(
        "warm",
        help="pre-populate the result cache for popular pairs",
        description="Run every (model, accelerator) pair through the "
                    "engine with the on-disk result cache attached, so "
                    "subsequent service jobs (and experiments) for "
                    "those pairs skip straight to finalization.")
    warm.add_argument("--models", required=True, metavar="A,B,...",
                      help="comma list of model specs to warm")
    warm.add_argument("--accelerators", required=True,
                      metavar="X,Y,...",
                      help="comma list of accelerator keys to warm")
    warm.add_argument("--tier", default="functional",
                      choices=("functional", "analytic"))
    warm.add_argument("--quick", action="store_true",
                      help="warm the quick-mode (subsampled) payloads "
                           "instead of full-size")
    warm.add_argument("--seed", type=int, default=0)
    warm.add_argument("--jobs", default="auto", metavar="N|auto",
                      help="engine worker processes; 'auto' (default) "
                           "adapts to the miss count, 0 = one per core")
    _add_verbosity_flags(warm)
    warm.set_defaults(func=cmd_warm)

    trace = sub.add_parser(
        "trace",
        help="analyze a Chrome-trace artifact from --trace",
        description="Offline attribution for a trace produced by "
                    "--trace (or $REPRO_TRACE) on experiment/dse runs: "
                    "per-track wall-clock coverage, per-phase self-time "
                    "attribution (synthesize / simulate / memory / "
                    "finalize / runner), and the top-k spans.")
    trace.add_argument("action", choices=("summarize",))
    trace.add_argument("file", help="Chrome trace-event JSON artifact")
    trace.add_argument("--top", type=int, default=10, metavar="K",
                       help="span rows to print (default 10)")
    _add_verbosity_flags(trace)
    trace.set_defaults(func=cmd_trace)

    for extra in (run, sweep):
        _add_verbosity_flags(extra)
    return parser


def main(argv: Optional[List[str]] = None) -> str:
    """Parse, dispatch, emit. Returns the payload string (tests and
    embedding callers consume the return value; stdout emission routes
    through the ``repro.out`` logger so ``-q`` can silence it)."""
    args = build_parser().parse_args(argv)
    verbosity = (getattr(args, "verbose", 0) - getattr(args, "quiet", 0))
    obs_logs.configure_logging(verbosity)
    log = obs_logs.get_logger(__name__)

    # Tracing spans the whole dispatch for the subcommands that opt in
    # (experiment/dse carry --trace; $REPRO_TRACE is the env default).
    trace_out = None
    if hasattr(args, "trace") and args.command != "trace":
        trace_out = args.trace or os.environ.get(obs_trace.TRACE_ENV)
    session = obs_trace.start_tracing(trace_out) if trace_out else None

    try:
        output = args.func(args)
    finally:
        trace_path = obs_trace.stop_tracing() if session else None

    if trace_path is not None:
        output += f"\nwrote trace to {trace_path}"
    if getattr(args, "metrics_out", None):
        obs_metrics.default_registry().dump_json(args.metrics_out)
        log.debug("wrote metrics JSON to %s", args.metrics_out)
    if getattr(args, "metrics", False):
        output += "\n\n" + obs_metrics.default_registry().render()
    obs_logs.output_logger().info("%s", output)
    return output
